"""Process-pool sweep executor with resumable shard checkpoints.

The figure sweeps iterate a (benchmark x family x budget) grid whose cells
are completely independent: predictors are constructed fresh per cell and
traces are pure functions of (benchmark, length, seed).  This module shards
that grid into per-cell work units, runs them across ``--jobs N`` worker
processes, and merges the results back in the canonical serial order, so
figure output is byte-identical to the serial path (each cell computes the
very same floats; JSON round-trips them exactly).

Resumability: with a run directory, every finished shard is checkpointed as
one JSON file (written atomically by the parent), so an interrupted or
crashed sweep restarted with the same directory skips completed shards.
``run.json`` pins the per-kind sweep configuration; resuming under a
different configuration (scale, engine, trace length, machine) is refused
rather than silently mixing results.

Failures: a shard that raises is retried up to ``max_retries`` times; every
failure is recorded in the run manifest (``manifest.json`` in the run
directory, mirrored into the obs manifest via :func:`drain_run_reports`).
A worker process that dies outright (broken pool) costs one retry for every
shard that was still outstanding in that round.

Workers rely on the per-process LRU trace cache in
:mod:`repro.workloads.spec2000` (capacity ``REPRO_TRACE_CACHE``) so one
worker decodes each benchmark trace once, not once per predictor config;
per-shard hit/miss deltas are reported back for the run manifest.  When
``REPRO_TRACE_STORE`` is set, workers additionally share the on-disk
content-addressed trace store (:mod:`repro.workloads.store`) under their
private LRUs, so a warmed store means *no* worker regenerates any trace;
per-shard store hit/miss/corrupt/write deltas are aggregated per worker
and run-wide into the manifest (``trace_store``) and mirrored into obs
counters when profiling.

One layer above both sits the content-addressed *result* store
(:mod:`repro.harness.resultstore`, ``REPRO_RESULT_STORE``): each worker
probes it before executing, so a shard whose key hits returns its stored
payload without loading a trace or building a predictor at all.  Workers
share the store directory exactly like the trace store; per-shard
``result_store`` stat deltas are aggregated run-wide into the manifest and
mirrored into ``result_store.*`` obs counters when profiling.

Test hooks (used by the CI kill/resume job and the test suite):

* ``REPRO_PARALLEL_ABORT_AFTER=K`` — abort the run (RuntimeError) after K
  freshly-executed shards, simulating a mid-run crash after their
  checkpoints were written;
* ``REPRO_PARALLEL_FAIL_SHARD=<substring>`` +
  ``REPRO_PARALLEL_FAIL_ATTEMPTS=N`` — shards whose key contains the
  substring fail their first N attempts, exercising the retry path
  deterministically;
* ``REPRO_PARALLEL_SLOW_SHARD=<substring>`` +
  ``REPRO_PARALLEL_SLOW_SHARD_SECONDS=S`` — shards whose key contains the
  substring sleep S seconds before executing, injecting a deterministic
  straggler (the synthetic slowdown the ``repro-stats regress`` CI gate
  and the straggler-report tests exercise).

Telemetry: when ``REPRO_LOG`` is set, the run leaves a JSONL event trail
(:mod:`repro.obs.events`).  The parent claims ownership of the log file
before the pool spawns, serializes the active span context into every
shard call so worker spans (``parallel.shard``) attach to the parent's
``parallel.run`` span, and at the end of the run merges the per-PID worker
sidecar files back into the main log and emits the run summary — the feed
for ``repro-stats timeline | flame | critical-path | stores | regress``.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field

from repro import obs
from repro.common.atomic import atomic_write_json
from repro.obs import events as obs_events
from repro.common.errors import ConfigurationError, ReproError
from repro.harness.experiment import default_jobs

#: Store-statistic keys workers report per shard and manifests aggregate.
STORE_STAT_KEYS = ("hits", "misses", "corrupt", "writes", "evictions")

#: Bumped when the shard checkpoint / run manifest layout changes.
CHECKPOINT_SCHEMA = 1

#: Default retry budget per shard (``REPRO_MAX_RETRIES`` override).
DEFAULT_MAX_RETRIES = 2


class SweepExecutionError(ReproError):
    """A shard kept failing after exhausting its retry budget."""


@dataclass(frozen=True)
class Shard:
    """One independent (kind, benchmark, family, budget[, mode]) work unit."""

    kind: str  # "accuracy" | "ipc"
    benchmark: str
    family: str
    budget_bytes: int
    mode: str = ""  # ipc shards only

    @property
    def key(self) -> str:
        """Stable identifier; doubles as the checkpoint file stem."""
        parts = [self.kind, self.benchmark, self.family, str(self.budget_bytes)]
        if self.mode:
            parts.append(self.mode)
        return "__".join(parts)


@dataclass
class ShardOutcome:
    """A finished shard: its payload plus execution bookkeeping."""

    shard: Shard
    payload: dict
    duration_seconds: float
    worker_pid: int
    retries: int = 0
    from_checkpoint: bool = False
    regenerated: bool = False  # assembled from the result store, not executed
    trace_cache: dict = field(default_factory=dict)
    trace_store: dict = field(default_factory=dict)
    result_store: dict = field(default_factory=dict)


def pool_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count: explicit argument, else ``REPRO_JOBS``,
    else one worker per CPU (this module's default)."""
    if jobs is not None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        return jobs
    if os.environ.get("REPRO_JOBS", "").strip():
        return default_jobs()
    return os.cpu_count() or 1


def resolve_max_retries(max_retries: int | None = None) -> int:
    """Per-shard retry budget: explicit argument, else ``REPRO_MAX_RETRIES``."""
    if max_retries is None:
        raw = os.environ.get("REPRO_MAX_RETRIES", "").strip()
        if not raw:
            return DEFAULT_MAX_RETRIES
        try:
            max_retries = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_MAX_RETRIES must be an integer >= 0, got {raw!r}"
            ) from None
    if max_retries < 0:
        raise ConfigurationError(f"max retries must be >= 0, got {max_retries}")
    return max_retries


# -- worker side ---------------------------------------------------------------


def _build_shard_predictor(shard: Shard, spec_payload: dict | None):
    """The shard's predictor: rebuilt from the parent's serialized spec when
    one travelled with the shard (sizing ran once, in the parent), else
    sized fresh from the registry — bit-identical either way."""
    from repro.predictors import registry

    if spec_payload is not None:
        return registry.build_serialized(spec_payload)
    return registry.build(shard.family, shard.budget_bytes)


def _shard_result_key(shard: Shard, cfg: dict) -> tuple[str, "object"]:
    """The shard's result-store (key, cell) pair — the same recipe the
    serial sweeps use, so serial and parallel runs share one cache."""
    from repro.harness.resultstore import (
        ResultCell,
        accuracy_result_key,
        ipc_result_key,
    )

    if shard.kind == "accuracy":
        key = accuracy_result_key(
            shard.benchmark,
            shard.family,
            shard.budget_bytes,
            cfg["instructions"],
            cfg["engine"],
            cfg["warmup_fraction"],
        )
        return key, ResultCell("accuracy", shard.benchmark, shard.family, shard.budget_bytes)
    if shard.kind == "ipc":
        key = ipc_result_key(
            shard.benchmark,
            shard.family,
            shard.budget_bytes,
            shard.mode,
            cfg["instructions"],
            cfg["machine"],
        )
        return key, ResultCell(
            "ipc", shard.benchmark, shard.family, shard.budget_bytes, shard.mode
        )
    raise ConfigurationError(f"unknown shard kind {shard.kind!r}")


def _compute_shard_payload(shard: Shard, cfg: dict, spec_payload: dict | None) -> dict:
    """Actually execute one shard's measurement (the result-store miss path)."""
    from repro.harness.scale import warmup_branches
    from repro.workloads.spec2000 import spec2000_trace

    if shard.kind == "accuracy":
        from repro.harness.experiment import measure_accuracy

        trace = spec2000_trace(shard.benchmark, instructions=cfg["instructions"])
        warmup = warmup_branches(trace.conditional_branch_count)
        predictor = _build_shard_predictor(shard, spec_payload)
        result = measure_accuracy(
            predictor, trace, warmup_branches=warmup, engine=cfg["engine"]
        )
        return {"misprediction_percent": result.misprediction_percent}
    if shard.kind == "ipc":
        from repro.harness.sweep import make_policy
        from repro.uarch.config import MachineConfig
        from repro.uarch.simulator import CycleSimulator
        from repro.workloads.spec2000 import get_profile

        trace = spec2000_trace(shard.benchmark, instructions=cfg["instructions"])
        policy = make_policy(
            shard.family,
            shard.budget_bytes,
            shard.mode,
            predictor=_build_shard_predictor(shard, spec_payload),
        )
        simulator = CycleSimulator(
            policy,
            config=MachineConfig(**cfg["machine"]),
            ilp=get_profile(shard.benchmark).ilp,
        )
        result = simulator.run(trace)
        override_rate = (
            result.overrides / result.conditional_branches
            if result.conditional_branches
            else 0.0
        )
        return {
            "ipc": result.ipc,
            "misprediction_percent": 100.0 * result.misprediction_rate,
            "override_rate": override_rate,
        }
    raise ConfigurationError(f"unknown shard kind {shard.kind!r}")


def _execute_shard(
    shard: Shard,
    cfg: dict,
    attempt: int,
    spec_payload: dict | None = None,
    trace_ctx: dict | None = None,
) -> dict:
    """Run one shard in a worker process; returns a JSON-able result dict.

    With ``REPRO_RESULT_STORE`` set, the worker first consults the shared
    content-addressed result store: a hit returns the stored payload
    without loading a trace or building a predictor; a miss computes and
    persists the cell for every later run (and every sibling worker).

    ``trace_ctx`` is the parent run's serialized span context: the worker
    adopts it, so the ``parallel.shard`` span it opens here (and any store
    spans beneath) parent to the ``parallel.run`` span living in the parent
    process — the cross-process half of the distributed trace.

    Deferred imports keep executor scheduling importable without dragging in
    the whole measurement stack (and they are free after the first shard).
    """
    from repro.harness.resultstore import active_result_store, result_store_stats
    from repro.workloads.spec2000 import trace_cache_info
    from repro.workloads.store import store_stats

    obs.adopt_context(trace_ctx)

    fail_key = os.environ.get("REPRO_PARALLEL_FAIL_SHARD", "")
    if fail_key and fail_key in shard.key:
        fail_attempts = int(os.environ.get("REPRO_PARALLEL_FAIL_ATTEMPTS", "1"))
        if attempt < fail_attempts:
            raise RuntimeError(
                f"injected failure for shard {shard.key} (attempt {attempt})"
            )
    before = trace_cache_info()
    store_before = store_stats()
    results_before = result_store_stats()
    started = time.perf_counter()
    with obs.span("parallel.shard", shard=shard.key, attempt=attempt):
        # Inside the span so the injected straggler is visible to the
        # telemetry it exists to exercise (straggler stats, regress gate).
        slow_key = os.environ.get("REPRO_PARALLEL_SLOW_SHARD", "")
        if slow_key and slow_key in shard.key:
            time.sleep(
                float(os.environ.get("REPRO_PARALLEL_SLOW_SHARD_SECONDS", "0") or 0)
            )
        result_store = active_result_store()
        if result_store is not None:
            key, cell = _shard_result_key(shard, cfg)
            payload = result_store.get_or_compute(
                key, cell, lambda: _compute_shard_payload(shard, cfg, spec_payload)
            )
        else:
            payload = _compute_shard_payload(shard, cfg, spec_payload)
    after = trace_cache_info()
    store_after = store_stats()
    results_after = result_store_stats()
    return {
        "payload": payload,
        "duration_seconds": time.perf_counter() - started,
        "worker_pid": os.getpid(),
        "trace_cache": {
            "hits": after["hits"] - before["hits"],
            "misses": after["misses"] - before["misses"],
        },
        "trace_store": {
            key: store_after[key] - store_before[key] for key in STORE_STAT_KEYS
        },
        "result_store": {
            key: results_after[key] - results_before[key] for key in STORE_STAT_KEYS
        },
    }


# -- checkpoint store ----------------------------------------------------------


class CheckpointStore:
    """Per-shard JSON checkpoints plus the pinned run configuration."""

    def __init__(self, run_dir: str) -> None:
        self.run_dir = run_dir
        self.shard_dir = os.path.join(run_dir, "shards")
        os.makedirs(self.shard_dir, exist_ok=True)
        self._run_path = os.path.join(run_dir, "run.json")

    def pin_config(self, kind: str, cfg: dict) -> None:
        """Record ``cfg`` as the run's configuration for ``kind`` sweeps.

        The first sweep of each kind pins it; later sweeps (including
        resumes) must present an identical configuration or the run
        directory is refused — mixing configurations would merge cells
        measured under different settings into one figure.
        """
        run = self._load_run()
        pinned = run["config"].get(kind)
        if pinned is None:
            run["config"][kind] = cfg
            self._write_json(self._run_path, run)
        elif pinned != _json_roundtrip(cfg):
            raise ConfigurationError(
                f"run directory {self.run_dir!r} was created with a different "
                f"{kind}-sweep configuration; resume with the original "
                f"REPRO_SCALE/REPRO_ENGINE/machine settings or use a fresh "
                f"--run-dir (pinned: {pinned}, requested: {cfg})"
            )

    def load(self, shard: Shard) -> ShardOutcome | None:
        """The checkpointed outcome for ``shard``, or None if absent/invalid."""
        path = self._shard_path(shard)
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("schema") != CHECKPOINT_SCHEMA or data.get("shard") != asdict(shard):
            return None
        worker = data.get("worker") or {}
        return ShardOutcome(
            shard=shard,
            payload=data["payload"],
            duration_seconds=worker.get("duration_seconds", 0.0),
            worker_pid=worker.get("pid", 0),
            retries=worker.get("retries", 0),
            from_checkpoint=True,
        )

    def store(self, outcome: ShardOutcome) -> None:
        """Atomically persist one finished shard."""
        self._write_json(
            self._shard_path(outcome.shard),
            {
                "schema": CHECKPOINT_SCHEMA,
                "shard": asdict(outcome.shard),
                "payload": outcome.payload,
                "worker": {
                    "pid": outcome.worker_pid,
                    "duration_seconds": outcome.duration_seconds,
                    "retries": outcome.retries,
                },
            },
        )

    def write_manifest(self, summary: dict) -> str:
        """Write the run-level manifest (shard timings, retries, failures)."""
        path = os.path.join(self.run_dir, "manifest.json")
        self._write_json(path, summary)
        return path

    def _shard_path(self, shard: Shard) -> str:
        return os.path.join(self.shard_dir, f"{shard.key}.json")

    def _load_run(self) -> dict:
        try:
            with open(self._run_path, encoding="utf-8") as handle:
                run = json.load(handle)
        except FileNotFoundError:
            return {"schema": CHECKPOINT_SCHEMA, "created_unix": time.time(), "config": {}}
        if run.get("schema") != CHECKPOINT_SCHEMA:
            raise ConfigurationError(
                f"{self._run_path} has checkpoint schema {run.get('schema')!r}; "
                f"this build reads schema {CHECKPOINT_SCHEMA} — use a fresh run dir"
            )
        return run

    @staticmethod
    def _write_json(path: str, data: dict) -> None:
        # The shared atomic helper (tmp.<pid> + rename): a writer killed
        # mid-write leaves only a staging file, which ``load`` never reads.
        atomic_write_json(path, data)


def _json_roundtrip(value: dict) -> dict:
    """``value`` as it will compare after a JSON write/read cycle."""
    return json.loads(json.dumps(value))


# -- run reports (consumed by obs manifests) -----------------------------------

_RUN_REPORTS: list[dict] = []


def drain_run_reports() -> list[dict]:
    """Pop every parallel-run summary recorded since the last drain.

    ``repro.obs.manifest.build_manifest`` calls this so each figure manifest
    carries the per-shard worker timings and retry counts of the parallel
    sweeps that produced it.
    """
    reports, _RUN_REPORTS[:] = _RUN_REPORTS[:], []
    return reports


# -- executor ------------------------------------------------------------------


def run_shards(
    shards: list[Shard],
    cfg: dict,
    jobs: int | None = None,
    run_dir: str | None = None,
    max_retries: int | None = None,
    label: str = "sweep",
) -> list[ShardOutcome]:
    """Execute ``shards`` across a process pool; returns outcomes in input
    order (the canonical serial order, so merged results are deterministic).

    ``cfg`` is the JSON-able per-shard configuration (trace length, engine,
    machine parameters); with ``run_dir`` it is pinned in ``run.json`` and
    completed shards are checkpointed and skipped on resume.
    """
    # Deferred: campaign imports this module at its own import time.
    from repro.harness import campaign as campaign_mod
    from repro.harness.resultstore import active_result_store

    jobs = pool_jobs(jobs)
    max_retries = resolve_max_retries(max_retries)
    cfg = _json_roundtrip(cfg)
    # Claim the REPRO_LOG file before any worker exists: workers inherit the
    # owner PID (env var survives both fork and spawn) and route their
    # events to per-PID sidecars instead of interleaving into our file.
    obs.claim_log_ownership()
    spec_payloads = _shard_spec_payloads(shards)
    kinds = {shard.kind for shard in shards}
    store = None
    layout = None
    if run_dir is not None:
        store = CheckpointStore(run_dir)
        layout = campaign_mod.CampaignLayout(run_dir)
        for kind in sorted(kinds):
            store.pin_config(kind, cfg)

    # Resume is a campaign scan: the classifier is the single authority on
    # what a run directory already holds (the old bespoke checkpoint loop
    # could not tell completed from torn, failed, or store-recoverable).
    outcomes: dict[str, ShardOutcome] = {}
    remaining: dict[str, Shard] = {}
    if store is None:
        remaining = {shard.key: shard for shard in shards}
    else:
        result_store = active_result_store()
        cells = [
            campaign_mod.CellStatus(
                shard,
                campaign_mod.classify_shard(
                    shard, layout=layout, result_store=result_store, cfg=cfg
                ),
            )
            for shard in shards
        ]
        obs_events.emit_classify(campaign_mod.class_counts(cells), label=label)
        for cell in cells:
            shard = cell.shard
            if cell.status == "completed":
                outcomes[shard.key] = store.load(shard)
                obs_events.emit_checkpoint(shard.key, "load")
            elif cell.status == "results_missing":
                # Regenerate-only: the checkpoint is assembled straight from
                # the result store — no trace load, no predictor work.
                key, rcell = _shard_result_key(shard, cfg)
                payload = result_store.load(key, rcell)
                if payload is None:  # evicted/corrupted since classification
                    remaining[shard.key] = shard
                    continue
                outcome = ShardOutcome(
                    shard=shard,
                    payload=payload,
                    duration_seconds=0.0,
                    worker_pid=os.getpid(),
                    regenerated=True,
                )
                outcomes[shard.key] = outcome
                store.store(outcome)
                obs_events.emit_checkpoint(shard.key, "store", regenerated=True)
            else:
                if cell.status == "failed":
                    # About to re-execute: the old exhausted-budget marker
                    # is stale evidence now.
                    try:
                        os.unlink(layout.failure_path(shard))
                    except OSError:
                        pass
                remaining[shard.key] = shard

    abort_after = int(os.environ.get("REPRO_PARALLEL_ABORT_AFTER", "0") or "0")
    attempts: dict[str, int] = dict.fromkeys(remaining, 0)
    failures: list[dict] = []
    executed = 0
    status = "completed"
    started = time.perf_counter()
    profiling = obs.enabled()

    def record_failure(shard: Shard, error: str) -> None:
        failures.append(
            {"shard": shard.key, "attempt": attempts[shard.key], "error": error}
        )
        obs_events.emit_retry(shard.key, attempts[shard.key], error)
        attempts[shard.key] += 1
        if attempts[shard.key] > max_retries:
            if layout is not None:
                # The durable evidence behind the campaign scanner's
                # ``failed`` class: a later scan offers this cell for
                # ``rerun --status failed`` instead of silently retrying.
                atomic_write_json(
                    layout.failure_path(shard),
                    {
                        "schema": campaign_mod.CAMPAIGN_SCHEMA,
                        "shard": asdict(shard),
                        "attempts": attempts[shard.key],
                        "error": error,
                        "ts": time.time(),
                    },
                )
            raise SweepExecutionError(
                f"shard {shard.key} failed {attempts[shard.key]} times "
                f"(max_retries={max_retries}); last error: {error}"
            )
        # The shard goes back on this run's in-memory queue with its budget
        # decremented — the same requeue-with-budget contract the on-disk
        # campaign queue uses.
        obs_events.emit_requeue(shard.key, attempts[shard.key], error)

    try:
        with obs.span(
            "parallel.run", label=label, jobs=jobs, shards=len(shards), resumed=len(outcomes)
        ):
            # The context workers adopt so their shard spans parent here.
            trace_ctx = obs.current_context()
            while remaining:
                round_shards = list(remaining.values())
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    futures = {
                        pool.submit(
                            _execute_shard,
                            shard,
                            cfg,
                            attempts[shard.key],
                            spec_payloads[(shard.family, shard.budget_bytes)],
                            trace_ctx,
                        ): shard
                        for shard in round_shards
                    }
                    pending = set(futures)
                    broken = False
                    while pending:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            shard = futures[future]
                            try:
                                result = future.result()
                            except BrokenProcessPool:
                                broken = True
                                continue
                            except Exception as exc:  # worker raised: retry
                                record_failure(shard, f"{type(exc).__name__}: {exc}")
                                continue
                            outcome = ShardOutcome(
                                shard=shard,
                                payload=result["payload"],
                                duration_seconds=result["duration_seconds"],
                                worker_pid=result["worker_pid"],
                                retries=attempts[shard.key],
                                trace_cache=result["trace_cache"],
                                trace_store=result.get("trace_store", {}),
                                result_store=result.get("result_store", {}),
                            )
                            outcomes[shard.key] = outcome
                            del remaining[shard.key]
                            if store is not None:
                                store.store(outcome)
                                obs_events.emit_checkpoint(shard.key, "store")
                            executed += 1
                            if profiling:
                                registry = obs.registry()
                                registry.counter("parallel.shards_executed").inc()
                                registry.timer("parallel.shard_seconds").observe(
                                    outcome.duration_seconds
                                )
                            if abort_after and executed >= abort_after:
                                pool.shutdown(wait=False, cancel_futures=True)
                                raise RuntimeError(
                                    f"aborted by REPRO_PARALLEL_ABORT_AFTER="
                                    f"{abort_after} after {executed} shards"
                                )
                        if broken:
                            break
                if broken:
                    # Every shard still outstanding in the broken round pays
                    # one retry (the dead worker is not identifiable).
                    for shard in list(remaining.values()):
                        record_failure(shard, "BrokenProcessPool: worker died")
    except SweepExecutionError:
        status = "failed"
        raise
    except BaseException:
        status = "aborted"
        raise
    finally:
        summary = _summarize(
            label, jobs, max_retries, shards, outcomes, failures, status,
            time.perf_counter() - started, spec_payloads,
        )
        _RUN_REPORTS.append(summary)
        # Pull every worker's per-PID sidecar into the main event log and
        # close the trail with the authoritative run summary (the numbers
        # ``repro-stats regress`` gates on).  Both no-op without REPRO_LOG.
        obs_events.collect_worker_events()
        obs_events.emit_counter(
            {f"trace_cache.{key}": value for key, value in summary["trace_cache"].items()}
        )
        obs_events.emit_run_summary(
            label,
            {k: v for k, v in summary.items() if k not in ("specs", "shard_timings")},
        )
        if profiling:
            registry = obs.registry()
            registry.counter("parallel.shards_resumed").inc(
                summary["shards"]["resumed"]
            )
            if summary["shards"]["regenerated"]:
                registry.counter("parallel.shards_regenerated").inc(
                    summary["shards"]["regenerated"]
                )
            registry.counter("parallel.retries").inc(summary["retries"])
            # Worker-process store activity never reaches parent counters on
            # its own; mirror the aggregated deltas here.
            for key, value in summary["trace_store"].items():
                if value:
                    registry.counter(f"trace_store.{key}").inc(value)
            for key, value in summary["result_store"].items():
                if value:
                    registry.counter(f"result_store.{key}").inc(value)
        if store is not None:
            store.write_manifest(summary)

    return [outcomes[shard.key] for shard in shards]


def _shard_spec_payloads(shards: list[Shard]) -> dict[tuple[str, int], dict | None]:
    """Serialized specs keyed by (family, budget): sizing runs once, here in
    the parent, and workers rebuild bit-identical predictors from the
    embedded configs.  A family the registry cannot resolve maps to None —
    the worker falls back to its own registry build (and raises the same
    error the serial path would)."""
    from repro.predictors import registry

    payloads: dict[tuple[str, int], dict | None] = {}
    for shard in shards:
        key = (shard.family, shard.budget_bytes)
        if key in payloads:
            continue
        try:
            payloads[key] = registry.serialize_spec(shard.family, shard.budget_bytes)
        except ReproError:
            payloads[key] = None
    return payloads


def _summarize(
    label: str,
    jobs: int,
    max_retries: int,
    shards: list[Shard],
    outcomes: dict[str, ShardOutcome],
    failures: list[dict],
    status: str,
    wall_seconds: float,
    spec_payloads: dict[tuple[str, int], dict | None] | None = None,
) -> dict:
    """The run manifest body: per-shard timings, worker load, retry counts."""
    workers: dict[str, dict] = {}
    cache = {"hits": 0, "misses": 0}
    store_totals = dict.fromkeys(STORE_STAT_KEYS, 0)
    result_totals = dict.fromkeys(STORE_STAT_KEYS, 0)
    timings = []
    for shard in shards:
        outcome = outcomes.get(shard.key)
        if outcome is None:
            continue
        timings.append(
            {
                "shard": shard.key,
                "seconds": outcome.duration_seconds,
                "pid": outcome.worker_pid,
                "retries": outcome.retries,
                "from_checkpoint": outcome.from_checkpoint,
                "regenerated": outcome.regenerated,
            }
        )
        if not outcome.from_checkpoint and not outcome.regenerated:
            worker = workers.setdefault(
                str(outcome.worker_pid),
                {"shards": 0, "seconds": 0.0, "trace_store": dict.fromkeys(STORE_STAT_KEYS, 0)},
            )
            worker["shards"] += 1
            worker["seconds"] += outcome.duration_seconds
            cache["hits"] += outcome.trace_cache.get("hits", 0)
            cache["misses"] += outcome.trace_cache.get("misses", 0)
            for key in STORE_STAT_KEYS:
                delta = outcome.trace_store.get(key, 0)
                worker["trace_store"][key] += delta
                store_totals[key] += delta
                result_totals[key] += outcome.result_store.get(key, 0)
    resumed = sum(1 for o in outcomes.values() if o.from_checkpoint)
    regenerated = sum(1 for o in outcomes.values() if o.regenerated)
    specs = {
        f"{family}@{budget}": payload
        for (family, budget), payload in sorted(spec_payloads.items())
    } if spec_payloads else {}
    return {
        "schema": CHECKPOINT_SCHEMA,
        "specs": specs,
        "label": label,
        "status": status,
        "jobs": jobs,
        "max_retries": max_retries,
        "wall_seconds": wall_seconds,
        "shards": {
            "total": len(shards),
            "resumed": resumed,
            "regenerated": regenerated,
            "executed": len(outcomes) - resumed - regenerated,
            "incomplete": len(shards) - len(outcomes),
        },
        "retries": len(failures),
        "failures": failures,
        "workers": workers,
        "trace_cache": cache,
        "trace_store": store_totals,
        "result_store": result_totals,
        "shard_timings": timings,
    }


# -- sweep entry points (called by repro.harness.sweep) ------------------------


def accuracy_shard_grid(
    families: list[str], budgets: list[int], benchmarks: list[str]
) -> list[Shard]:
    """Accuracy shards in the serial sweep's iteration order."""
    return [
        Shard("accuracy", benchmark, family, budget)
        for benchmark in benchmarks
        for family in families
        for budget in budgets
    ]


def parallel_accuracy_sweep(
    families: list[str],
    budgets: list[int],
    benchmarks: list[str],
    instructions: int,
    engine: str | None,
    jobs: int | None = None,
    run_dir: str | None = None,
    max_retries: int | None = None,
) -> list:
    """The parallel counterpart of :func:`repro.harness.sweep.accuracy_sweep`.

    Returns ``AccuracyCell`` rows identical (including float bit patterns)
    to the serial path's, in the same order.
    """
    from repro.harness.experiment import default_engine
    from repro.harness.scale import WARMUP_FRACTION
    from repro.harness.sweep import AccuracyCell

    cfg = {
        "instructions": instructions,
        "engine": engine if engine is not None else default_engine(),
        "warmup_fraction": WARMUP_FRACTION,
    }
    outcomes = run_shards(
        accuracy_shard_grid(families, budgets, benchmarks),
        cfg,
        jobs=jobs,
        run_dir=run_dir,
        max_retries=max_retries,
        label="accuracy_sweep",
    )
    return [
        AccuracyCell(
            benchmark=o.shard.benchmark,
            family=o.shard.family,
            budget_bytes=o.shard.budget_bytes,
            misprediction_percent=o.payload["misprediction_percent"],
        )
        for o in outcomes
    ]


def parallel_ipc_sweep(
    families: list[str],
    budgets: list[int],
    mode: str,
    benchmarks: list[str],
    instructions: int,
    config,
    jobs: int | None = None,
    run_dir: str | None = None,
    max_retries: int | None = None,
) -> list:
    """The parallel counterpart of :func:`repro.harness.sweep.ipc_sweep`."""
    from repro.harness.sweep import IpcCell

    cfg = {"instructions": instructions, "machine": asdict(config)}
    shards = [
        Shard("ipc", benchmark, family, budget, mode)
        for benchmark in benchmarks
        for family in families
        for budget in budgets
    ]
    outcomes = run_shards(
        shards,
        cfg,
        jobs=jobs,
        run_dir=run_dir,
        max_retries=max_retries,
        label=f"ipc_sweep.{mode}",
    )
    return [
        IpcCell(
            benchmark=o.shard.benchmark,
            family=o.shard.family,
            mode=o.shard.mode,
            budget_bytes=o.shard.budget_bytes,
            ipc=o.payload["ipc"],
            misprediction_percent=o.payload["misprediction_percent"],
            override_rate=o.payload["override_rate"],
        )
        for o in outcomes
    ]
