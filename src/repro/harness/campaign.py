"""Campaign orchestrator: classify -> plan -> execute over a shared run dir.

The sweep layers below this one already persist everything a multi-process
campaign needs — per-shard checkpoints (:mod:`repro.harness.parallel`), the
content-addressed trace store, and the content-addressed result store — but
until now "what work remains?" was answered three different ways: figconfig's
grid probe, parallel's resume scan, and raw result-store key probes, none of
which could tell a *failed* run from a *partial* one.  This module is the
single answer.

**Classification** (the ProjectScylla ``rerun_agents.py`` model).  Every cell
of a campaign's shard universe lands in exactly one class:

========================  =====================================  ============
class                     evidence                               action
========================  =====================================  ============
``completed``             valid checkpoint under the final name  skip
``partial``               torn checkpoint (unparseable /wrong    re-execute
                          schema / shard mismatch), a stale
                          ``*.tmp.<pid>`` staging file, or a
                          claim file with no checkpoint (worker
                          died mid-cell)
``failed``                failure marker (retry budget            re-execute
                          exhausted on a previous run)
``results_missing``       no checkpoint, but the result store    regenerate
                          has the cell's payload — assemble the  (no predictor
                          checkpoint from the store              work)
``missing``               none of the above                      execute
========================  =====================================  ============

Precedence: completed > partial(torn) > failed > partial(claim) >
results_missing > missing.

**Work queue.**  ``plan`` enqueues one JSON entry per actionable cell under
``<run_dir>/queue/``; any number of worker processes — on any number of
machines sharing the run directory — pull from it.  Mutual exclusion is one
claim file per cell under ``<run_dir>/claims/``, created with
``O_CREAT|O_EXCL`` (:func:`repro.common.atomic.exclusive_create_json`): the
create-or-fail race has exactly one winner.  A claim older than
``REPRO_CAMPAIGN_STALE_SECONDS`` is presumed abandoned (its worker crashed)
and may be *stolen*; the steal is serialized by an atomic rename of the stale
claim to a tombstone — ``rename(2)`` succeeds for exactly one stealer, so two
workers can never both adopt the same dead cell.  Completion order is
checkpoint -> dequeue -> release claim, so a crash at any point leaves
evidence the scanner maps back to a class that re-converges.

**Retries** are requeue-with-budget: a failing cell goes back on the queue
with its attempt count incremented until ``max_retries`` is exhausted, at
which point a failure marker is written and the cell classifies as
``failed`` until a ``rerun --status failed`` clears it.

Classification, claim, steal, and requeue all emit versioned events on the
:mod:`repro.obs.events` bus (no-ops without ``REPRO_LOG``), and each worker
ends with a ``campaign.worker`` run summary whose ``campaign.cells_executed``
counter is the zero-duplication proof: summed across all workers of a
campaign it must equal the number of planned executions exactly.

Environment:

* ``REPRO_CAMPAIGN_STALE_SECONDS`` — claim age beyond which it may be stolen
  (default 600; must exceed the slowest single cell's execution time);
* ``REPRO_CAMPAIGN_POLL_SECONDS`` — idle worker poll interval (default 0.2);
* ``REPRO_CAMPAIGN_ABORT_AFTER=K`` — test hook: a worker dies (RuntimeError)
  after K executed cells *while holding its next claim*, manufacturing the
  stale-claim / partial evidence the crash drills classify and steal.
"""

from __future__ import annotations

import json
import os
import socket
import time
from collections.abc import Callable
from dataclasses import asdict, dataclass

from repro import obs
from repro.common.atomic import (
    atomic_write_json,
    exclusive_create_json,
    stale_tmp_siblings,
)
from repro.common.errors import ConfigurationError, ReproError
from repro.harness.parallel import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    Shard,
    ShardOutcome,
    _execute_shard,
    _shard_result_key,
    _shard_spec_payloads,
    resolve_max_retries,
)
from repro.obs import events as obs_events

#: Bumped when the campaign/queue/claim file layout changes.
CAMPAIGN_SCHEMA = 1

#: The five run classes, in display order.
CLASSES = ("completed", "results_missing", "failed", "partial", "missing")

#: What the planner does about each class.
ACTIONS = {
    "completed": "skip",
    "results_missing": "regenerate",
    "failed": "execute",
    "partial": "execute",
    "missing": "execute",
}

#: Default seconds before an untouched claim is presumed abandoned.
DEFAULT_STALE_SECONDS = 600.0

#: Default idle-worker poll interval.
DEFAULT_POLL_SECONDS = 0.2

#: ``--status`` spellings accepted for each canonical class.
STATUS_ALIASES = {
    "completed": "completed",
    "results": "results_missing",
    "results-missing": "results_missing",
    "results_missing": "results_missing",
    "failed": "failed",
    "partial": "partial",
    "missing": "missing",
}


class CampaignError(ReproError):
    """A campaign operation failed (bad layout, incomplete merge, ...)."""


def stale_seconds_default() -> float:
    """The stale-claim threshold (``REPRO_CAMPAIGN_STALE_SECONDS``)."""
    raw = os.environ.get("REPRO_CAMPAIGN_STALE_SECONDS", "").strip()
    if not raw:
        return DEFAULT_STALE_SECONDS
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_CAMPAIGN_STALE_SECONDS must be a number, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(f"stale seconds must be > 0, got {value}")
    return value


def poll_seconds_default() -> float:
    """The idle-worker poll interval (``REPRO_CAMPAIGN_POLL_SECONDS``)."""
    raw = os.environ.get("REPRO_CAMPAIGN_POLL_SECONDS", "").strip()
    if not raw:
        return DEFAULT_POLL_SECONDS
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_CAMPAIGN_POLL_SECONDS must be a number, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(f"poll seconds must be >= 0, got {value}")
    return value


def normalize_statuses(raw: str | list[str]) -> list[str]:
    """Canonical class names for a ``--status`` value (comma-separable)."""
    if isinstance(raw, str):
        raw = raw.split(",")
    names = []
    for item in raw:
        item = item.strip().lower()
        if not item:
            continue
        canonical = STATUS_ALIASES.get(item)
        if canonical is None:
            raise ConfigurationError(
                f"unknown status {item!r}; choose from "
                + ", ".join(sorted(set(STATUS_ALIASES)))
            )
        if canonical not in names:
            names.append(canonical)
    if not names:
        raise ConfigurationError("no statuses given")
    return names


# -- on-disk layout ------------------------------------------------------------


class CampaignLayout:
    """Path arithmetic for one campaign's shared run directory.

    ::

        <run_dir>/
          campaign.json            pinned shard universe + per-kind config
          run.json                 per-kind config pin (CheckpointStore)
          shards/<key>.json        completed-cell checkpoints
          shards/<key>.failed.json failure markers (retry budget exhausted)
          queue/<key>.json         outstanding work units
          claims/<key>.json        live worker claims
          merged.json              the deterministic merge
    """

    def __init__(self, run_dir: str) -> None:
        self.run_dir = run_dir
        self.shard_dir = os.path.join(run_dir, "shards")
        self.queue_dir = os.path.join(run_dir, "queue")
        self.claim_dir = os.path.join(run_dir, "claims")
        self.campaign_path = os.path.join(run_dir, "campaign.json")
        self.merged_path = os.path.join(run_dir, "merged.json")

    def ensure(self) -> "CampaignLayout":
        for directory in (self.shard_dir, self.queue_dir, self.claim_dir):
            os.makedirs(directory, exist_ok=True)
        return self

    def checkpoint_path(self, shard: Shard) -> str:
        return os.path.join(self.shard_dir, f"{shard.key}.json")

    def failure_path(self, shard: Shard) -> str:
        return os.path.join(self.shard_dir, f"{shard.key}.failed.json")

    def queue_path(self, key: str) -> str:
        return os.path.join(self.queue_dir, f"{key}.json")

    def claim_path(self, key: str) -> str:
        return os.path.join(self.claim_dir, f"{key}.json")


def _read_json(path: str) -> dict | None:
    """``path`` parsed as a JSON object, or None (absent, torn, not a dict)."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


def shard_from_dict(data: dict) -> Shard:
    """Rebuild a :class:`Shard` from its ``asdict`` form."""
    return Shard(
        kind=data["kind"],
        benchmark=data["benchmark"],
        family=data["family"],
        budget_bytes=int(data["budget_bytes"]),
        mode=data.get("mode", ""),
    )


# -- campaign spec -------------------------------------------------------------


def create_campaign(
    run_dir: str,
    shards: list[Shard],
    cfg_by_kind: dict[str, dict],
    label: str = "campaign",
) -> dict:
    """Create (or idempotently join) the campaign pinned in ``run_dir``.

    The first creator writes ``campaign.json`` — the shard universe in
    canonical merge order plus the per-kind sweep configuration — and pins
    the same configuration through :meth:`CheckpointStore.pin_config` so
    plain ``--run-dir`` resumes see it too.  Later callers (concurrent
    workers, reruns) must present an identical universe and configuration
    or the directory is refused rather than silently mixed.
    """
    layout = CampaignLayout(run_dir).ensure()
    store = CheckpointStore(run_dir)
    spec = json.loads(
        json.dumps(
            {
                "schema": CAMPAIGN_SCHEMA,
                "label": label,
                "cfg": cfg_by_kind,
                "shards": [asdict(shard) for shard in shards],
            }
        )
    )
    for kind in sorted({shard.kind for shard in shards}):
        store.pin_config(kind, cfg_by_kind[kind])
    existing = _read_json(layout.campaign_path)
    if existing is None:
        atomic_write_json(layout.campaign_path, spec)
        return spec
    if (
        existing.get("schema") != CAMPAIGN_SCHEMA
        or existing.get("shards") != spec["shards"]
        or existing.get("cfg") != spec["cfg"]
    ):
        raise ConfigurationError(
            f"run directory {run_dir!r} already holds a different campaign "
            f"(label {existing.get('label')!r}); use a fresh run dir or rerun "
            f"with the original grid and configuration"
        )
    return existing


def load_campaign(run_dir: str) -> dict:
    """The campaign pinned in ``run_dir`` (raises without one)."""
    layout = CampaignLayout(run_dir)
    spec = _read_json(layout.campaign_path)
    if spec is None:
        raise CampaignError(
            f"{layout.campaign_path} not found or unreadable — create the "
            f"campaign first (repro-campaign run) before scanning it"
        )
    if spec.get("schema") != CAMPAIGN_SCHEMA:
        raise CampaignError(
            f"{layout.campaign_path} has campaign schema {spec.get('schema')!r}; "
            f"this build reads schema {CAMPAIGN_SCHEMA}"
        )
    return spec


def campaign_shards(spec: dict) -> list[Shard]:
    """The campaign's shard universe, in canonical merge order."""
    return [shard_from_dict(item) for item in spec["shards"]]


# -- classification ------------------------------------------------------------


@dataclass(frozen=True)
class CellStatus:
    """One classified cell: the shard, its class, and the planned action."""

    shard: Shard
    status: str

    @property
    def action(self) -> str:
        return ACTIONS[self.status]


def _checkpoint_state(layout: CampaignLayout, shard: Shard) -> str:
    """``"valid"`` / ``"torn"`` / ``"absent"`` for one cell's checkpoint.

    Torn means *evidence of an interrupted write*: a file under the final
    name that does not parse, carries the wrong schema, or describes a
    different shard — or a leftover ``*.tmp.<pid>`` staging sibling with no
    valid final file.  ``CheckpointStore.load`` collapses all of those to
    "absent" (correct for resume); classification must keep them distinct
    because a torn checkpoint proves a worker died *here*.
    """
    path = layout.checkpoint_path(shard)
    data = _read_json(path)
    if data is not None:
        if data.get("schema") == CHECKPOINT_SCHEMA and data.get("shard") == asdict(shard):
            return "valid"
        return "torn"
    if os.path.exists(path):
        return "torn"  # present but unreadable/unparseable: killed mid-write
    if stale_tmp_siblings(path):
        return "torn"
    return "absent"


def classify_shard(
    shard: Shard,
    layout: CampaignLayout | None = None,
    result_store=None,
    cfg: dict | None = None,
) -> str:
    """The class of one cell (see the module table).

    With a ``layout`` the full five-class evidence chain applies.  Without
    one (figconfig's pure-store classification, where no run directory
    exists) the result store is the only evidence: hit -> ``completed``,
    miss -> ``missing``.
    """
    hit = None
    if result_store is not None and cfg is not None:
        key, cell = _shard_result_key(shard, cfg)
        hit = result_store.probe(key, cell)
    if layout is None:
        return "completed" if hit else "missing"
    state = _checkpoint_state(layout, shard)
    if state == "valid":
        return "completed"
    if state == "torn":
        return "partial"
    if os.path.exists(layout.failure_path(shard)):
        return "failed"
    if os.path.exists(layout.claim_path(shard.key)):
        return "partial"
    if hit:
        return "results_missing"
    return "missing"


def scan(
    run_dir: str,
    shards: list[Shard] | None = None,
    cfg_by_kind: dict[str, dict] | None = None,
    label: str = "",
) -> list[CellStatus]:
    """Classify every cell of the campaign in ``run_dir``.

    ``shards``/``cfg_by_kind`` default to the pinned ``campaign.json``.
    Emits one ``classify`` event with the per-class counts.
    """
    if shards is None or cfg_by_kind is None:
        spec = load_campaign(run_dir)
        shards = campaign_shards(spec) if shards is None else shards
        cfg_by_kind = spec["cfg"] if cfg_by_kind is None else cfg_by_kind
        label = label or spec.get("label", "")
    layout = CampaignLayout(run_dir)
    from repro.harness.resultstore import active_result_store

    result_store = active_result_store()
    cells = [
        CellStatus(
            shard,
            classify_shard(
                shard,
                layout=layout,
                result_store=result_store,
                cfg=cfg_by_kind.get(shard.kind),
            ),
        )
        for shard in shards
    ]
    obs_events.emit_classify(class_counts(cells), label=label or "campaign.scan")
    return cells


def class_counts(cells: list[CellStatus]) -> dict[str, int]:
    """Per-class cell counts, zero-filled over all five classes."""
    counts = dict.fromkeys(CLASSES, 0)
    for cell in cells:
        counts[cell.status] += 1
    return counts


# -- work queue ----------------------------------------------------------------


class WorkQueue:
    """The file-locked on-disk work queue under ``<run_dir>/queue``.

    Entries are one JSON file per cell; claims are one JSON file per cell
    under ``<run_dir>/claims``.  Everything is safe against concurrent
    workers on machines that only share the filesystem: entry writes are
    atomic renames, claims are ``O_EXCL`` creates, and steals are
    serialized by the tombstone rename (exactly one ``rename(2)`` caller
    sees the source file).
    """

    def __init__(self, layout: CampaignLayout) -> None:
        self.layout = layout

    # entries ------------------------------------------------------------

    def enqueue(self, shard: Shard, action: str, attempts: int = 0) -> None:
        """Idempotently (re)write one work unit."""
        atomic_write_json(
            self.layout.queue_path(shard.key),
            {
                "schema": CAMPAIGN_SCHEMA,
                "shard": asdict(shard),
                "action": action,
                "attempts": attempts,
            },
        )

    def entry(self, key: str) -> dict | None:
        """The current entry for ``key`` (None once dequeued)."""
        data = _read_json(self.layout.queue_path(key))
        if data is None or data.get("schema") != CAMPAIGN_SCHEMA:
            return None
        return data

    def keys(self) -> list[str]:
        """Outstanding work-unit keys, sorted for deterministic pull order."""
        try:
            names = os.listdir(self.layout.queue_dir)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")]
            for name in names
            if name.endswith(".json") and ".tmp." not in name
        )

    def dequeue(self, key: str) -> None:
        try:
            os.unlink(self.layout.queue_path(key))
        except OSError:
            pass

    # claims -------------------------------------------------------------

    def try_claim(self, key: str, owner: str, stale_seconds: float) -> str | None:
        """Claim ``key`` for ``owner``: ``"claimed"``, ``"stolen"``, or None.

        None means another worker holds a live claim — skip the cell and
        come back later.  A claim whose ``ts`` is older than
        ``stale_seconds`` (or that is unreadable: its writer died
        mid-create) is stolen: the stale file is renamed to a PID-suffixed
        tombstone first, and since exactly one concurrent ``rename`` of the
        same source succeeds, exactly one stealer proceeds to re-create the
        claim — via the same ``O_EXCL`` create a fresh claimer uses, so a
        stealer can still lose to a faster fresh claimer and back off.
        """
        path = self.layout.claim_path(key)
        claim = {
            "schema": CAMPAIGN_SCHEMA,
            "owner": owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "ts": time.time(),
        }
        if exclusive_create_json(path, claim):
            return "claimed"
        existing = _read_json(path)
        if existing is not None:
            age = time.time() - float(existing.get("ts", 0.0))
        else:
            # Unreadable claim: fall back to the file clock rather than
            # presuming its writer dead — claims are published with their
            # content (link trick), so this is a legacy/corrupt file, and
            # mtime still bounds how long its owner could have been alive.
            try:
                age = time.time() - os.stat(path).st_mtime
            except OSError:
                return None  # vanished under us: released or stolen; move on
        if age < stale_seconds:
            return None
        tombstone = f"{path}.stale.{os.getpid()}"
        try:
            os.rename(path, tombstone)
        except OSError:
            return None  # another stealer won the rename
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        if exclusive_create_json(path, claim):
            return "stolen"
        return None

    def release(self, key: str) -> None:
        try:
            os.unlink(self.layout.claim_path(key))
        except OSError:
            pass


# -- planner -------------------------------------------------------------------


def plan(
    run_dir: str,
    statuses: list[str] | None = None,
    cells: list[CellStatus] | None = None,
) -> dict[str, int]:
    """Turn a scan into queued work; returns per-action planned counts.

    Every actionable cell (anything but ``completed``) is enqueued —
    restricted to ``statuses`` when given (the ``rerun --status`` path).
    Planning a ``failed`` or ``partial`` cell clears its stale evidence
    (failure marker, torn checkpoint, staging droppings) so the fresh
    execution starts from a clean slate; live claims are deliberately left
    alone — the stale-claim steal in :meth:`WorkQueue.try_claim` is the
    only codepath allowed to break one.
    """
    layout = CampaignLayout(run_dir).ensure()
    queue = WorkQueue(layout)
    if cells is None:
        cells = scan(run_dir)
    planned = {"execute": 0, "regenerate": 0, "skip": 0}
    for cell in cells:
        if statuses is not None and cell.status not in statuses:
            continue
        if cell.action == "skip":
            planned["skip"] += 1
            continue
        if cell.status == "failed":
            try:
                os.unlink(layout.failure_path(cell.shard))
            except OSError:
                pass
        if cell.status == "partial":
            checkpoint = layout.checkpoint_path(cell.shard)
            for stale in stale_tmp_siblings(checkpoint):
                try:
                    os.unlink(stale)
                except OSError:
                    pass
            data = _read_json(checkpoint)
            if data is None or data.get("schema") != CHECKPOINT_SCHEMA or data.get(
                "shard"
            ) != asdict(cell.shard):
                try:
                    os.unlink(checkpoint)
                except OSError:
                    pass
        queue.enqueue(cell.shard, cell.action)
        planned[cell.action] += 1
    return planned


# -- worker --------------------------------------------------------------------


def _regenerate_payload(shard: Shard, cfg: dict) -> dict | None:
    """The cell's payload straight from the result store (None on miss).

    The ``results_missing`` fast path: no trace load, no predictor build —
    the store entry *is* the result, checksum-verified by the store itself.
    """
    from repro.harness.resultstore import active_result_store

    store = active_result_store()
    if store is None:
        return None
    key, cell = _shard_result_key(shard, cfg)
    return store.load(key, cell)


def run_worker(
    run_dir: str,
    owner: str | None = None,
    stale_seconds: float | None = None,
    poll_seconds: float | None = None,
    max_retries: int | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> dict:
    """Pull work units from the campaign queue until it drains.

    One call = one worker process.  Run any number of these concurrently
    against the same run directory (locally or across machines sharing
    it); the claim protocol guarantees each cell executes exactly once
    barring crashes, and crash recovery is a rescan away.

    ``should_stop`` is polled between cells (never mid-cell): when it goes
    truthy the worker finishes the cell it holds, releases its claim, and
    returns with summary status ``"stopped"`` — the graceful-drain hook the
    prediction service's SIGTERM path uses.  A stopped worker leaves the
    queue intact; rescanning and rerunning later re-converges.

    Returns (and emits as a ``campaign.worker`` run summary) this worker's
    counters: ``cells_executed``, ``cells_regenerated``, ``claims``,
    ``steals``, ``requeues``, ``failures``.
    """
    spec = load_campaign(run_dir)
    cfg_by_kind = spec["cfg"]
    layout = CampaignLayout(run_dir).ensure()
    queue = WorkQueue(layout)
    store = CheckpointStore(run_dir)
    owner = owner or f"{socket.gethostname()}:{os.getpid()}"
    stale_seconds = stale_seconds if stale_seconds is not None else stale_seconds_default()
    poll_seconds = poll_seconds if poll_seconds is not None else poll_seconds_default()
    max_retries = resolve_max_retries(max_retries)
    abort_after = int(os.environ.get("REPRO_CAMPAIGN_ABORT_AFTER", "0") or "0")
    spec_payloads = _shard_spec_payloads(campaign_shards(spec))
    obs.claim_log_ownership()
    counters = {
        "cells_executed": 0,
        "cells_regenerated": 0,
        "claims": 0,
        "steals": 0,
        "requeues": 0,
        "failures": 0,
    }
    status = "completed"
    started = time.perf_counter()
    try:
        with obs.span("campaign.worker", owner=owner, run_dir=run_dir):
            # _execute_shard runs in-process here (unlike the parallel
            # pool), so the open campaign.worker span already parents the
            # shard spans through the local stack.  Adopting a context
            # would install a process-global ambient parent that outlives
            # this call.
            trace_ctx = None
            stopped = False
            while not stopped:
                keys = queue.keys()
                if not keys:
                    break
                progressed = False
                for key in keys:
                    if should_stop is not None and should_stop():
                        stopped = True
                        break
                    claim = queue.try_claim(key, owner, stale_seconds)
                    if claim is None:
                        continue
                    progressed = True
                    counters["claims"] += 1
                    if claim == "stolen":
                        counters["steals"] += 1
                    obs_events.emit_claim(key, owner, stolen=claim == "stolen")
                    # A raise out of _work_one (the abort drill, or anything
                    # unexpected) deliberately leaves the claim held — that
                    # is exactly the stale-claim evidence a crashed worker
                    # leaves, and the steal path is how it gets cleaned up.
                    _work_one(
                        key,
                        queue,
                        store,
                        layout,
                        cfg_by_kind,
                        spec_payloads,
                        counters,
                        max_retries,
                        trace_ctx,
                        abort_after,
                    )
                    queue.release(key)
                if not stopped and not progressed and queue.keys():
                    # Everything outstanding is claimed by live workers;
                    # wait for them to finish, fail, or go stale.
                    time.sleep(poll_seconds)
            if stopped:
                status = "stopped"
    except BaseException:
        status = "aborted"
        raise
    finally:
        summary = {
            "schema": CAMPAIGN_SCHEMA,
            "owner": owner,
            "status": status,
            "wall_seconds": time.perf_counter() - started,
            "cells": dict(counters),
        }
        obs_events.emit_counter(
            {f"campaign.{name}": value for name, value in counters.items()}
        )
        obs_events.emit_run_summary("campaign.worker", summary)
    return counters


def _work_one(
    key: str,
    queue: WorkQueue,
    store: CheckpointStore,
    layout: CampaignLayout,
    cfg_by_kind: dict[str, dict],
    spec_payloads: dict,
    counters: dict[str, int],
    max_retries: int,
    trace_ctx: dict | None,
    abort_after: int,
) -> bool:
    """Process one claimed work unit; True when the claim may be released.

    The entry is re-read *after* claiming: a worker that completed the cell
    moments ago dequeued it before releasing its claim, so a vanished entry
    (or an already-valid checkpoint) means the work is done, not ours.
    """
    entry = queue.entry(key)
    if entry is None:
        return True
    shard = shard_from_dict(entry["shard"])
    if store.load(shard) is not None:
        queue.dequeue(key)
        return True
    done = counters["cells_executed"] + counters["cells_regenerated"]
    if abort_after and done >= abort_after:
        # Crash drill: die holding this claim, leaving the stale-claim /
        # still-queued evidence the scanner must classify as partial.
        raise RuntimeError(
            f"aborted by REPRO_CAMPAIGN_ABORT_AFTER={abort_after} "
            f"after {done} cells (claim {key} left held)"
        )
    cfg = cfg_by_kind.get(shard.kind)
    if cfg is None:
        raise CampaignError(f"campaign has no configuration for kind {shard.kind!r}")
    attempt = int(entry.get("attempts", 0))
    action = entry.get("action", "execute")
    started = time.perf_counter()
    try:
        payload = None
        regenerated = False
        if action == "regenerate":
            payload = _regenerate_payload(shard, cfg)
            regenerated = payload is not None
            # A store entry evicted since the scan falls through to a
            # normal execution rather than failing the cell.
        if payload is None:
            result = _execute_shard(
                shard,
                cfg,
                attempt,
                spec_payloads.get((shard.family, shard.budget_bytes)),
                trace_ctx,
            )
            payload = result["payload"]
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
        counters["failures"] += 1
        obs_events.emit_retry(key, attempt, error)
        if attempt < max_retries:
            queue.enqueue(shard, action, attempts=attempt + 1)
            counters["requeues"] += 1
            obs_events.emit_requeue(key, attempt + 1, error)
        else:
            atomic_write_json(
                layout.failure_path(shard),
                {
                    "schema": CAMPAIGN_SCHEMA,
                    "shard": asdict(shard),
                    "attempts": attempt + 1,
                    "error": error,
                    "ts": time.time(),
                },
            )
            queue.dequeue(key)
        return True
    outcome = ShardOutcome(
        shard=shard,
        payload=payload,
        duration_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
        retries=attempt,
    )
    store.store(outcome)
    obs_events.emit_checkpoint(key, "store")
    if regenerated:
        counters["cells_regenerated"] += 1
    else:
        counters["cells_executed"] += 1
    queue.dequeue(key)
    return True


# -- merge ---------------------------------------------------------------------


def merge(run_dir: str) -> dict:
    """Assemble ``merged.json`` from the campaign's checkpoints.

    Rows are emitted in the canonical order pinned by ``campaign.json``
    and contain only the shard identity and its payload — no PIDs, no
    timings — so a merge is byte-identical across serial, parallel,
    interrupted-and-resumed, and multi-worker campaigns that computed the
    same cells.
    """
    spec = load_campaign(run_dir)
    layout = CampaignLayout(run_dir)
    store = CheckpointStore(run_dir)
    rows = []
    incomplete = []
    for shard in campaign_shards(spec):
        outcome = store.load(shard)
        if outcome is None:
            incomplete.append(shard.key)
            continue
        rows.append({"shard": asdict(shard), "payload": outcome.payload})
    if incomplete:
        raise CampaignError(
            f"campaign in {run_dir!r} is not complete; "
            f"{len(incomplete)} cells lack checkpoints "
            f"(first: {incomplete[0]}) — run workers or rerun failed cells first"
        )
    merged = {
        "schema": CAMPAIGN_SCHEMA,
        "label": spec.get("label", ""),
        "rows": rows,
    }
    atomic_write_json(layout.merged_path, merged)
    return merged
