"""Budget-sweep building blocks used by the figure generators.

A sweep runs one predictor configuration per (benchmark, budget) cell and
aggregates across benchmarks per the paper's conventions.  Predictors are
constructed fresh per cell (no state leaks across benchmarks), while traces
are cached by the workload layer so the expensive part is paid once — and,
with ``REPRO_TRACE_STORE`` set, persisted to the content-addressed trace
store so later *processes* pay nothing either (warm runs replay columnar
traces with byte-identical sweep results).

Because cells are independent, both sweeps accept ``jobs`` (default: the
``REPRO_JOBS`` environment variable, 1 = serial): with more than one job
the grid is executed by the process-pool executor in
:mod:`repro.harness.parallel`, which shards per cell, checkpoints finished
shards under ``run_dir`` (default ``REPRO_RUN_DIR``) for crash resume, and
merges results back in this module's serial iteration order — the returned
cells are identical either way.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import asdict, dataclass

from repro import obs
from repro.common.errors import ConfigurationError
from repro.core.overriding import OverridingPredictor
from repro.harness.aggregate import arithmetic_mean, harmonic_mean
from repro.harness.experiment import default_engine, measure_accuracy, measure_override
from repro.harness.resultstore import (
    ResultCell,
    accuracy_result_key,
    active_result_store,
    ipc_result_key,
)
from repro.harness.scale import (
    WARMUP_FRACTION,
    accuracy_instructions,
    benchmark_names,
    ipc_instructions,
    warmup_branches,
)
from repro.predictors import registry
from repro.predictors.base import BranchPredictor
from repro.timing.latency import predictor_latency
from repro.uarch.config import PAPER_MACHINE, MachineConfig
from repro.uarch.policies import FetchPolicy, OverridingPolicy, SingleCyclePolicy
from repro.uarch.simulator import CycleSimulator, SimulationResult
from repro.workloads.spec2000 import get_profile, spec2000_trace

#: The paper's power-of-two budget ladder (bytes).
FULL_BUDGETS = [2**k * 1024 for k in range(1, 10)]  # 2KB .. 512KB
LARGE_BUDGETS = [2**k * 1024 for k in range(4, 10)]  # 16KB .. 512KB


def _resolve_parallel(
    jobs: int | None, run_dir: str | None
) -> tuple[int, str | None]:
    """Resolve the (jobs, run_dir) pair a sweep call should use.

    ``jobs=None`` defers to ``REPRO_JOBS`` (default 1: serial in-process);
    ``run_dir=None`` defers to ``REPRO_RUN_DIR`` (default: no checkpoints).
    """
    from repro.harness.experiment import default_jobs

    if jobs is None:
        jobs = default_jobs()
    if run_dir is None:
        run_dir = os.environ.get("REPRO_RUN_DIR", "").strip() or None
    return jobs, run_dir


def build_family(family: str, budget_bytes: int) -> BranchPredictor:
    """Construct any registered predictor family — one registry lookup,
    covering the factory families and the pipelined ``repro.core`` ones."""
    return registry.build(family, budget_bytes)


@dataclass(frozen=True)
class AccuracyCell:
    """One (benchmark, family, budget) accuracy measurement."""

    benchmark: str
    family: str
    budget_bytes: int
    misprediction_percent: float


def accuracy_sweep(
    families: list[str],
    budgets: list[int],
    benchmarks: list[str] | None = None,
    instructions: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
    run_dir: str | None = None,
    max_retries: int | None = None,
) -> list[AccuracyCell]:
    """Misprediction rate for every (family, budget, benchmark) cell.

    ``engine`` selects the evaluation engine per cell (scalar reference or
    the vectorized batch engine); ``None`` defers to ``REPRO_ENGINE``.

    ``jobs`` > 1 fans the grid out across worker processes (``None`` defers
    to ``REPRO_JOBS``); ``run_dir`` checkpoints finished shards there so an
    interrupted sweep resumes without recomputation, retrying failed shards
    ``max_retries`` times.  Results are identical to the serial path.
    """
    if benchmarks is None:
        benchmarks = benchmark_names()
    if instructions is None:
        instructions = accuracy_instructions()
    jobs, run_dir = _resolve_parallel(jobs, run_dir)
    # The sweep-level span is the trace's local root for this sweep: the
    # serial per-benchmark spans (and, with jobs > 1, the executor's
    # parallel.run span plus every worker shard span) all parent beneath it.
    with obs.span(
        "accuracy_sweep",
        benchmarks=len(benchmarks),
        families=len(families),
        budgets=len(budgets),
        jobs=jobs,
    ):
        # Any run with a run directory goes through the planned-work
        # executor (even serially, jobs=1): checkpoints, campaign
        # classification, and selective rerun all live there now.
        if jobs > 1 or run_dir is not None:
            from repro.harness.parallel import parallel_accuracy_sweep

            return parallel_accuracy_sweep(
                families,
                budgets,
                benchmarks,
                instructions,
                engine,
                jobs=jobs,
                run_dir=run_dir,
                max_retries=max_retries,
            )
        engine_name = engine if engine is not None else default_engine()
        store = active_result_store()
        cells = []
        for benchmark in benchmarks:
            with obs.span(
                "accuracy_sweep.benchmark",
                benchmark=benchmark,
                families=",".join(families),
                budgets=len(budgets),
            ):
                # Lazy: with a warm result store the trace (and every
                # predictor) is never touched — the whole benchmark resolves
                # from disk.
                loader = _LazyTrace(benchmark, instructions)
                for family in families:
                    for budget in budgets:
                        payload = _accuracy_cell_payload(
                            store, benchmark, family, budget, instructions,
                            engine_name, loader,
                        )
                        cells.append(
                            AccuracyCell(
                                benchmark=benchmark,
                                family=family,
                                budget_bytes=budget,
                                misprediction_percent=payload["misprediction_percent"],
                            )
                        )
        return cells


class _LazyTrace:
    """One benchmark trace fetched at most once, and only when some cell
    actually misses the result store."""

    def __init__(self, benchmark: str, instructions: int) -> None:
        self.benchmark = benchmark
        self.instructions = instructions
        self._trace = None

    @property
    def trace(self):
        if self._trace is None:
            self._trace = spec2000_trace(self.benchmark, instructions=self.instructions)
        return self._trace

    @property
    def warmup(self) -> int:
        return warmup_branches(self.trace.conditional_branch_count)


def _accuracy_cell_payload(
    store,
    benchmark: str,
    family: str,
    budget: int,
    instructions: int,
    engine_name: str,
    loader: _LazyTrace,
) -> dict:
    """One accuracy cell through the result store (or computed directly).

    Cached and computed payloads are both JSON round-trips of the same
    floats, so warm sweeps are byte-identical to cold ones.
    """

    def compute() -> dict:
        predictor = build_family(family, budget)
        result = measure_accuracy(
            predictor, loader.trace, warmup_branches=loader.warmup, engine=engine_name
        )
        return {"misprediction_percent": result.misprediction_percent}

    if store is None:
        return compute()
    key = accuracy_result_key(
        benchmark, family, budget, instructions, engine_name, WARMUP_FRACTION
    )
    cell = ResultCell("accuracy", benchmark, family, budget)
    return store.get_or_compute(key, cell, compute)


def mean_by_family_budget(cells: list[AccuracyCell]) -> dict[tuple[str, int], float]:
    """Arithmetic mean misprediction (%) per (family, budget)."""
    groups: dict[tuple[str, int], list[float]] = {}
    for cell in cells:
        groups.setdefault((cell.family, cell.budget_bytes), []).append(
            cell.misprediction_percent
        )
    return {key: arithmetic_mean(values) for key, values in groups.items()}


# -- IPC sweeps ---------------------------------------------------------------


def make_policy(
    family: str,
    budget_bytes: int,
    mode: str,
    predictor: BranchPredictor | None = None,
) -> FetchPolicy:
    """Build the fetch policy for a family/budget under ``mode``.

    Modes: ``ideal`` (zero-delay complex predictor — Figure 7 left),
    ``overriding`` (quick 2K gshare + slow complex predictor — Figure 7
    right).  Which path a family takes is read off its registry spec:
    ``single_cycle`` families (pipelined by construction) accept either
    mode and never need overriding; ``override_eligible`` families have a
    latency model and can play the slow side of an overriding pair.

    ``predictor`` lets callers that already built the predictor (e.g. from
    a serialized spec) skip the registry build.
    """
    spec = registry.get_spec(family)
    if predictor is None:
        predictor = registry.build(family, budget_bytes)
    if spec.single_cycle or mode == "ideal":
        return SingleCyclePolicy(predictor)
    if mode == "overriding":
        if not spec.override_eligible:
            raise ConfigurationError(
                f"family {family!r} is not override-eligible "
                f"(no latency model registers it as a slow predictor)"
            )
        latency = predictor_latency(family, budget_bytes)
        return OverridingPolicy(OverridingPredictor(predictor, slow_latency=latency))
    raise ValueError(f"unknown policy mode {mode!r}")


@dataclass(frozen=True)
class IpcCell:
    """One (benchmark, family, mode, budget) cycle-simulation result."""

    benchmark: str
    family: str
    mode: str
    budget_bytes: int
    ipc: float
    misprediction_percent: float
    override_rate: float


def ipc_sweep(
    families: list[str],
    budgets: list[int],
    mode: str,
    benchmarks: list[str] | None = None,
    instructions: int | None = None,
    config: MachineConfig = PAPER_MACHINE,
    jobs: int | None = None,
    run_dir: str | None = None,
    max_retries: int | None = None,
) -> list[IpcCell]:
    """Cycle-simulated IPC for every (family, budget, benchmark) cell.

    Parallel execution mirrors :func:`accuracy_sweep`: ``jobs`` > 1 shards
    the grid across worker processes with optional ``run_dir`` checkpoints.
    """
    if benchmarks is None:
        benchmarks = benchmark_names()
    if instructions is None:
        instructions = ipc_instructions()
    jobs, run_dir = _resolve_parallel(jobs, run_dir)
    # Same trace shape as accuracy_sweep: one sweep-level root span over
    # either the serial per-benchmark spans or the parallel executor's tree.
    with obs.span(
        "ipc_sweep",
        mode=mode,
        benchmarks=len(benchmarks),
        families=len(families),
        budgets=len(budgets),
        jobs=jobs,
    ):
        if jobs > 1 or run_dir is not None:
            from repro.harness.parallel import parallel_ipc_sweep

            return parallel_ipc_sweep(
                families,
                budgets,
                mode,
                benchmarks,
                instructions,
                config,
                jobs=jobs,
                run_dir=run_dir,
                max_retries=max_retries,
            )
        store = active_result_store()
        machine = asdict(config)
        cells = []
        for benchmark in benchmarks:
            with obs.span(
                "ipc_sweep.benchmark", benchmark=benchmark, mode=mode, budgets=len(budgets)
            ):
                loader = _LazyTrace(benchmark, instructions)
                for family in families:
                    for budget in budgets:
                        payload = _ipc_cell_payload(
                            store, benchmark, family, budget, mode, instructions,
                            machine, config, loader,
                        )
                        cells.append(
                            IpcCell(
                                benchmark=benchmark,
                                family=family,
                                mode=mode,
                                budget_bytes=budget,
                                ipc=payload["ipc"],
                                misprediction_percent=payload["misprediction_percent"],
                                override_rate=payload["override_rate"],
                            )
                        )
        return cells


def _ipc_cell_payload(
    store,
    benchmark: str,
    family: str,
    budget: int,
    mode: str,
    instructions: int,
    machine: dict,
    config: MachineConfig,
    loader: _LazyTrace,
) -> dict:
    """One IPC cell through the result store (or simulated directly)."""

    def compute() -> dict:
        policy = make_policy(family, budget, mode)
        simulator = CycleSimulator(
            policy, config=config, ilp=get_profile(benchmark).ilp
        )
        result: SimulationResult = simulator.run(loader.trace)
        override_rate = (
            result.overrides / result.conditional_branches
            if result.conditional_branches
            else 0.0
        )
        return {
            "ipc": result.ipc,
            "misprediction_percent": 100.0 * result.misprediction_rate,
            "override_rate": override_rate,
        }

    if store is None:
        return compute()
    key = ipc_result_key(benchmark, family, budget, mode, instructions, machine)
    cell = ResultCell("ipc", benchmark, family, budget, mode)
    return store.get_or_compute(key, cell, compute)


def hmean_ipc_by_family_budget(cells: list[IpcCell]) -> dict[tuple[str, int], float]:
    """Harmonic mean IPC per (family, budget)."""
    groups: dict[tuple[str, int], list[float]] = {}
    for cell in cells:
        groups.setdefault((cell.family, cell.budget_bytes), []).append(cell.ipc)
    return {key: harmonic_mean(values) for key, values in groups.items()}


Builder = Callable[[str, int], BranchPredictor]


def override_statistics(
    family: str,
    budget_bytes: int,
    benchmarks: list[str] | None = None,
    instructions: int | None = None,
) -> dict[str, float]:
    """Per-benchmark override (disagreement) rates for a quick/slow pair."""
    if benchmarks is None:
        benchmarks = benchmark_names()
    if instructions is None:
        instructions = accuracy_instructions()
    latency = predictor_latency(family, budget_bytes)
    rates = {}
    for benchmark in benchmarks:
        with obs.span("override_statistics.benchmark", benchmark=benchmark, family=family):
            trace = spec2000_trace(benchmark, instructions=instructions)
            overriding = OverridingPredictor(
                build_family(family, budget_bytes), slow_latency=latency
            )
            result = measure_override(overriding, trace)
            rates[benchmark] = result.override_rate
    return rates
