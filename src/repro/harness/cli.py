"""``repro-figures`` — regenerate any of the paper's tables/figures.

Usage::

    repro-figures table2
    repro-figures figure1 figure5
    repro-figures all            # everything (slow at large REPRO_SCALE)

Scale with ``REPRO_SCALE`` (trace length multiplier) and
``REPRO_BENCHMARKS`` (subset of benchmark names); pick the accuracy
evaluation engine with ``--engine`` (or ``REPRO_ENGINE``).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.harness import figures
from repro.harness.experiment import ENGINES


def _print(text: str) -> None:
    print(text)
    print()


def run_figure1() -> None:
    """Print Figure 1 (accuracy vs budget)."""
    _print(figures.figure1().render())


def run_figure2() -> None:
    """Print Figure 2 (ideal vs overriding IPC)."""
    _print(figures.figure2().render())


def run_table1() -> None:
    """Print Table 1 (machine parameters)."""
    _print(figures.table1())


def run_table2() -> None:
    """Print Table 2 (predictor latencies)."""
    _print(figures.table2())


def run_figure5() -> None:
    """Print Figure 5 (large-budget accuracy)."""
    _print(figures.figure5().render())


def run_figure6() -> None:
    """Print Figure 6 (per-benchmark accuracy)."""
    _print(figures.figure6().render())


def run_figure7() -> None:
    """Print Figure 7 (both IPC panels)."""
    left, right = figures.figure7()
    _print(left.render())
    _print(right.render())


def run_figure8() -> None:
    """Print Figure 8 (per-benchmark IPC)."""
    _print(figures.figure8().render())


def run_delayed_update() -> None:
    """Print the Section 3.2 delayed-update study."""
    _print(figures.delayed_update_study().render())


def run_override() -> None:
    """Print the Section 4.5 override-rate study."""
    _print(figures.override_disagreement("perceptron").render())
    _print(figures.override_disagreement("multicomponent").render())


def run_extension() -> None:
    """Print the pipelined-families extension study."""
    _print(figures.extension_pipelined_families().render())


RUNNERS = {
    "figure1": run_figure1,
    "figure2": run_figure2,
    "table1": run_table1,
    "table2": run_table2,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "figure7": run_figure7,
    "figure8": run_figure8,
    "delayed-update": run_delayed_update,
    "override": run_override,
    "extension": run_extension,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: regenerate the requested figures/tables."""
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Regenerate tables/figures from 'Reconsidering Complex Branch Predictors'",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        choices=[*RUNNERS, "all"],
        help="which figures/tables to regenerate",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="accuracy evaluation engine (default: REPRO_ENGINE or 'auto'; "
        "'batch' uses the vectorized engine, 'scalar' the reference loop)",
    )
    args = parser.parse_args(argv)
    if args.engine is not None:
        # Runners take no arguments; the environment variable is the
        # process-wide channel every sweep already consults.
        os.environ["REPRO_ENGINE"] = args.engine
    targets = list(RUNNERS) if "all" in args.targets else args.targets
    for target in targets:
        RUNNERS[target]()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
