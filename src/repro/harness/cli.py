"""``repro-figures`` — regenerate any of the paper's tables/figures.

Usage::

    repro-figures table2
    repro-figures figure1 figure5
    repro-figures all                        # everything (slow at large REPRO_SCALE)
    repro-figures all --output-dir results/  # write .txt + manifest sidecars
    repro-figures table2 --profile           # metrics tables + manifest
    repro-figures --list-families            # the registered predictor zoo

Scale with ``REPRO_SCALE`` (trace length multiplier) and
``REPRO_BENCHMARKS`` (subset of benchmark names); pick the accuracy
evaluation engine with ``--engine`` (or ``REPRO_ENGINE``).

Parallel execution: ``--jobs N`` (or ``REPRO_JOBS``; ``auto`` = one worker
per CPU) shards every sweep across a process pool with results identical
to the serial path.  ``--run-dir DIR`` checkpoints finished shards so an
interrupted run restarted with ``--resume DIR`` skips completed work;
``--max-retries`` bounds per-shard retry attempts (failures land in
``DIR/manifest.json``).

Trace store: ``--trace-store DIR`` (or ``REPRO_TRACE_STORE``) persists
generated traces in a content-addressed on-disk store; later runs load
columnar arrays instead of re-executing workload generation, with
byte-identical figure output.  ``repro-figures --warm-traces`` (standalone
or before targets) prewarms the store for the current
``REPRO_SCALE``/``REPRO_BENCHMARKS`` grid.

Result store: ``--result-store DIR`` (or ``REPRO_RESULT_STORE``) memoizes
every sweep *cell* under a content key one layer above the trace store, so
a warm figure regeneration executes zero predictor work.  ``--config
PATH`` (repeatable; file or directory) runs declarative targets from
``configs/*.json`` — including inferred tables assembled purely from other
configs' stored results — and ``--dry-run`` reports hit/miss/inferred per
target without executing anything (see DESIGN.md §12).

Observability: ``--profile`` turns on the metrics registry, per-branch
misprediction attribution and ``span.*`` phase timers, prints the registry
after each target, and writes a run-manifest sidecar
(``<target>.manifest.json`` — see DESIGN.md §8) that ``repro-stats`` can
render and diff.  ``--verbose`` mirrors span open/close lines on stderr so
long sweeps show progress; ``REPRO_LOG=<path>`` appends structured JSONL
run events — spans with distributed-trace context, store operations,
retries, checkpoints — that the ``repro-stats timeline | flame |
critical-path | stores | regress`` subcommands aggregate (see DESIGN.md
§13).  Without any of these flags the output is byte-identical to the
uninstrumented tool.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.harness import figures
from repro.harness.experiment import ENGINES
from repro.obs.manifest import build_manifest, write_manifest


def run_figure1() -> str:
    """Figure 1 (accuracy vs budget)."""
    return figures.figure1().render()


def run_figure2() -> str:
    """Figure 2 (ideal vs overriding IPC)."""
    return figures.figure2().render()


def run_table1() -> str:
    """Table 1 (machine parameters)."""
    return figures.table1()


def run_table2() -> str:
    """Table 2 (predictor latencies)."""
    return figures.table2()


def run_figure5() -> str:
    """Figure 5 (large-budget accuracy)."""
    return figures.figure5().render()


def run_figure6() -> str:
    """Figure 6 (per-benchmark accuracy)."""
    return figures.figure6().render()


def run_figure7() -> str:
    """Figure 7 (both IPC panels)."""
    left, right = figures.figure7()
    return left.render() + "\n\n" + right.render()


def run_figure8() -> str:
    """Figure 8 (per-benchmark IPC)."""
    return figures.figure8().render()


def run_delayed_update() -> str:
    """The Section 3.2 delayed-update study."""
    return figures.delayed_update_study().render()


def run_override() -> str:
    """The Section 4.5 override-rate study."""
    return (
        figures.override_disagreement("perceptron").render()
        + "\n\n"
        + figures.override_disagreement("multicomponent").render()
    )


def run_extension() -> str:
    """The pipelined-families extension study."""
    return figures.extension_pipelined_families().render()


RUNNERS = {
    "figure1": run_figure1,
    "figure2": run_figure2,
    "table1": run_table1,
    "table2": run_table2,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "figure7": run_figure7,
    "figure8": run_figure8,
    "delayed-update": run_delayed_update,
    "override": run_override,
    "extension": run_extension,
}


def _run_target(target: str, output_dir: str | None, profile: bool, render=None) -> None:
    """Regenerate one target; write sidecars / print stats as requested.

    ``render`` overrides the built-in RUNNERS lookup — the ``--config``
    path passes a closure over the parsed config here, so config targets
    get the same output files, manifests and profiling as legacy ones.
    """
    if render is None:
        render = RUNNERS[target]
    if profile:
        # Per-target metrics: each manifest describes exactly one run.
        obs.reset()
    started = time.perf_counter()
    with obs.span(target):
        text = render()
    duration = time.perf_counter() - started
    print(text)
    print()
    if output_dir is not None:
        os.makedirs(output_dir, exist_ok=True)
        with open(os.path.join(output_dir, f"{target}.txt"), "w", encoding="utf-8") as f:
            f.write(text + "\n")
    if output_dir is not None or profile:
        manifest = build_manifest(target, text, duration)
        write_manifest(
            manifest, os.path.join(output_dir or ".", f"{target}.manifest.json")
        )
    if profile:
        print(obs.registry().render())
        print()


def _render_families() -> str:
    """The registry as a text table (``--list-families``)."""
    from repro.harness.report import render_table
    from repro.predictors import registry

    rows = []
    for spec in registry.specs():
        rows.append(
            (
                spec.name,
                spec.config_type.__name__,
                spec.batch_kernel or "-",
                "yes" if spec.single_cycle else "no",
                "yes" if spec.override_eligible else "no",
                spec.module,
            )
        )
    return render_table(
        "Registered predictor families",
        ["family", "config", "batch kernel", "single-cycle", "override", "module"],
        rows,
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point: regenerate the requested figures/tables."""
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Regenerate tables/figures from 'Reconsidering Complex Branch Predictors'",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="target",
        # Not argparse `choices`: with nargs="*" those reject an empty
        # list, breaking a bare `--list-families` invocation.  Unknown
        # targets are checked below with the same exit semantics.
        help=f"which figures/tables to regenerate: {', '.join([*RUNNERS, 'all'])}",
    )
    parser.add_argument(
        "--list-families",
        action="store_true",
        help="list every registered predictor family with its capability "
        "flags (from the declarative registry) and exit",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="accuracy evaluation engine (default: REPRO_ENGINE or 'auto'; "
        "'batch' uses the vectorized engine, 'scalar' the reference loop)",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="worker processes per sweep (or REPRO_JOBS; 'auto'/'0' = one "
        "per CPU; default 1 = serial). Figure output is byte-identical "
        "either way",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="checkpoint finished sweep shards under DIR so an interrupted "
        "parallel run can be resumed (see --resume)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume a parallel run from DIR's shard checkpoints, skipping "
        "completed shards (DIR must exist; implies --run-dir DIR)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry a failed sweep shard up to N times before giving up "
        "(or REPRO_MAX_RETRIES; default 2)",
    )
    parser.add_argument(
        "--trace-store",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk trace store (or REPRO_TRACE_STORE): "
        "traces are generated once, persisted under DIR, and loaded as "
        "columnar arrays on every later run — figure output is "
        "byte-identical cold or warm",
    )
    parser.add_argument(
        "--warm-traces",
        action="store_true",
        help="prewarm the trace store for the current scale/benchmark grid "
        "before running targets (or standalone, with no targets); "
        "requires --trace-store or REPRO_TRACE_STORE",
    )
    parser.add_argument(
        "--result-store",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk sweep-result store (or "
        "REPRO_RESULT_STORE): every (benchmark, family, budget[, mode]) "
        "cell is memoized under a content key, so warm figure "
        "regeneration executes zero predictor work with byte-identical "
        "output",
    )
    parser.add_argument(
        "--config",
        action="append",
        default=None,
        metavar="PATH",
        dest="configs",
        help="declarative target config (JSON file, or a directory of "
        "them; repeatable): runner-mode configs wrap built-in targets, "
        "sweep-mode configs declare arbitrary registered-family grids, "
        "inferred-mode configs assemble tables purely from other "
        "configs' stored results (see configs/ and DESIGN.md §12)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with --config: classify every declared sweep cell against "
        "the result store (hit/miss/inferred per target) and exit "
        "without executing anything",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        metavar="DIR",
        help="write each target's rendered text to DIR/<target>.txt plus a "
        "DIR/<target>.manifest.json sidecar (instead of shell redirection)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable observability: collect metrics + per-branch attribution, "
        "print the registry after each target, and write a manifest sidecar "
        "(to --output-dir, or the current directory)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="mirror span open/close progress lines on stderr",
    )
    args = parser.parse_args(argv)
    if args.list_families:
        print(_render_families())
        return 0
    if args.trace_store is not None:
        os.environ["REPRO_TRACE_STORE"] = args.trace_store
    if args.result_store is not None:
        os.environ["REPRO_RESULT_STORE"] = args.result_store
    if args.warm_traces:
        from repro.workloads.spec2000 import warm_trace_store

        report = warm_trace_store()
        print(
            f"trace store {report['store']}: {len(report['entries'])} entries "
            f"({report['generated']} generated, "
            f"{report['already_present']} already present)"
        )
        if not args.targets and not args.configs:
            return 0
    configs = []
    if args.configs:
        from repro.common.errors import ConfigurationError
        from repro.harness.figconfig import load_configs

        try:
            configs = load_configs(args.configs)
        except ConfigurationError as exc:
            parser.error(str(exc))
    if args.dry_run:
        if not configs:
            parser.error("--dry-run requires --config")
        from repro.harness.figconfig import classify
        from repro.harness.report import render_classification
        from repro.harness.resultstore import active_result_store

        store = active_result_store()
        run_dir = args.run_dir or os.environ.get("REPRO_RUN_DIR", "").strip() or None
        print(
            render_classification(
                "Config targets: result-store classification (dry run)",
                [classify(config, store, run_dir=run_dir) for config in configs],
            )
        )
        return 0
    if not args.targets and not configs:
        parser.error(
            "no targets given (or use --config / --list-families / --warm-traces)"
        )
    for target in args.targets:
        if target not in RUNNERS and target != "all":
            parser.error(
                f"unknown target {target!r} (choose from "
                f"{', '.join([*RUNNERS, 'all'])})"
            )
    if args.engine is not None:
        # Runners take no arguments; the environment variable is the
        # process-wide channel every sweep already consults.
        os.environ["REPRO_ENGINE"] = args.engine
    if args.resume is not None:
        if not os.path.isdir(args.resume):
            parser.error(f"--resume directory does not exist: {args.resume}")
        if args.run_dir is not None and args.run_dir != args.resume:
            parser.error("--resume and --run-dir name different directories")
        args.run_dir = args.resume
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = args.jobs
    if args.run_dir is not None:
        os.environ["REPRO_RUN_DIR"] = args.run_dir
    if args.max_retries is not None:
        os.environ["REPRO_MAX_RETRIES"] = str(args.max_retries)
    targets = list(RUNNERS) if "all" in args.targets else args.targets
    # Own the REPRO_LOG file before any sweep forks workers, so worker
    # processes route their events to per-PID sidecars (no interleaving).
    obs.claim_log_ownership()
    prior_enabled = obs.enabled_override()
    try:
        if args.profile:
            obs.set_enabled(True)
        if args.verbose:
            obs.set_verbose(True)
        for target in targets:
            _run_target(target, args.output_dir, args.profile)
        for config in configs:
            from repro.harness.figconfig import run_target as run_config_target

            _run_target(
                config.name,
                args.output_dir,
                args.profile,
                render=lambda config=config: run_config_target(config, RUNNERS),
            )
    finally:
        if args.profile:
            obs.set_enabled(prior_enabled)
        if args.verbose:
            obs.set_verbose(None)
    return 0


# -- repro-campaign ------------------------------------------------------------


def _campaign_grid(args, parser) -> tuple[list, dict]:
    """(shards, cfg_by_kind) from the ``run`` subcommand's grid flags."""
    from repro.harness.figconfig import grid_cfg
    from repro.harness.parallel import Shard
    from repro.harness.scale import benchmark_names

    if not args.families or not args.budgets:
        parser.error(
            "creating a campaign requires --families and --budgets "
            "(omit both to join the campaign already pinned in RUN_DIR)"
        )
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    try:
        budgets = [int(b) for b in args.budgets.split(",") if b.strip()]
    except ValueError:
        parser.error("--budgets must be a comma-separated list of integers")
    benchmarks = (
        [b.strip() for b in args.benchmarks.split(",") if b.strip()]
        if args.benchmarks
        else benchmark_names()
    )
    modes = [m.strip() for m in (args.mode or "ideal").split(",") if m.strip()]
    shards = []
    # Canonical merge order: benchmark -> family -> budget (-> mode), the
    # serial sweeps' iteration order.
    for benchmark in benchmarks:
        for family in families:
            for budget in budgets:
                if args.kind == "ipc":
                    shards.extend(
                        Shard("ipc", benchmark, family, budget, mode) for mode in modes
                    )
                else:
                    shards.append(Shard("accuracy", benchmark, family, budget))
    return shards, {args.kind: grid_cfg(args.kind)}


def _campaign_report(run_dir: str, cells, label: str) -> dict:
    """One scan as a JSON-able report (also the table renderer's input)."""
    from repro.harness.campaign import class_counts

    counts = class_counts(cells)
    return {
        "target": label or os.path.basename(run_dir.rstrip("/")) or run_dir,
        "mode": "campaign",
        "cells": len(cells),
        "counts": counts,
        "shards": [
            {"shard": cell.shard.key, "status": cell.status, "action": cell.action}
            for cell in cells
        ],
    }


def _print_campaign_scan(run_dir: str, cells, label: str, as_json: bool) -> dict:
    from repro.harness.report import render_classification

    report = _campaign_report(run_dir, cells, label)
    if as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            render_classification(
                f"Campaign classification: {run_dir}",
                [{k: v for k, v in report.items() if k != "shards"}],
            )
        )
    return report


def _run_campaign_worker(args, run_dir: str) -> dict:
    from repro.harness.campaign import run_worker

    return run_worker(
        run_dir,
        owner=args.owner,
        stale_seconds=args.stale_seconds,
        poll_seconds=args.poll_seconds,
        max_retries=args.max_retries,
    )


def campaign_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-campaign`` (``scan | run | rerun``).

    ``scan`` classifies every cell of the campaign pinned in RUN_DIR into
    completed / results-missing / failed / partial / missing without
    touching anything.  ``run`` creates (or joins) a campaign, plans the
    actionable cells onto the shared work queue, works the queue until it
    drains, and merges — launch it from several processes (or machines
    sharing RUN_DIR) for multi-worker execution.  ``rerun`` re-plans only
    the cells in the given classes (``--status failed,partial``), works
    them, and re-merges.
    """
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Classify, execute, and selectively rerun sweep campaigns "
        "over a shared run directory",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scan_p = subparsers.add_parser(
        "scan", help="classify every campaign cell (non-mutating)"
    )
    scan_p.add_argument("run_dir", metavar="RUN_DIR")
    scan_p.add_argument(
        "--dry-run",
        action="store_true",
        help="no-op (scan never mutates); accepted for symmetry with run",
    )
    scan_p.add_argument("--json", action="store_true", help="emit JSON instead")

    run_p = subparsers.add_parser(
        "run", help="create/join a campaign, work its queue, merge"
    )
    rerun_p = subparsers.add_parser(
        "rerun", help="re-plan and re-execute only the given classes"
    )
    rerun_p.add_argument(
        "--status",
        required=True,
        metavar="CLASSES",
        help="comma-separated classes to rerun (e.g. failed,partial; "
        "'results' regenerates checkpoints from the result store)",
    )
    for sub in (run_p, rerun_p):
        sub.add_argument("run_dir", metavar="RUN_DIR")
        sub.add_argument(
            "--owner",
            default=None,
            help="worker identity recorded in claims (default host:pid)",
        )
        sub.add_argument(
            "--stale-seconds",
            type=float,
            default=None,
            metavar="S",
            help="steal claims older than S seconds "
            "(or REPRO_CAMPAIGN_STALE_SECONDS; default 600 — must exceed "
            "the slowest single cell)",
        )
        sub.add_argument(
            "--poll-seconds",
            type=float,
            default=None,
            metavar="S",
            help="idle poll interval while other workers hold all remaining "
            "claims (or REPRO_CAMPAIGN_POLL_SECONDS; default 0.2)",
        )
        sub.add_argument(
            "--max-retries",
            type=int,
            default=None,
            metavar="N",
            help="requeue a failing cell up to N times before marking it "
            "failed (or REPRO_MAX_RETRIES; default 2)",
        )
        sub.add_argument(
            "--no-merge",
            action="store_true",
            help="skip the final merge (e.g. while other workers still run)",
        )
        sub.add_argument("--json", action="store_true", help="emit JSON instead")
    run_p.add_argument(
        "--kind", choices=("accuracy", "ipc"), default="accuracy",
        help="sweep kind when creating a campaign (default accuracy)",
    )
    run_p.add_argument(
        "--families", default=None, metavar="A,B",
        help="comma-separated predictor families (creates the campaign; "
        "omit to join the one already pinned in RUN_DIR)",
    )
    run_p.add_argument(
        "--budgets", default=None, metavar="N,M",
        help="comma-separated hardware budgets in bytes",
    )
    run_p.add_argument(
        "--benchmarks", default=None, metavar="A,B",
        help="comma-separated benchmarks (default REPRO_BENCHMARKS or all)",
    )
    run_p.add_argument(
        "--mode", default=None, metavar="M[,M]",
        help="ipc policy modes (default 'ideal'; ignored for accuracy)",
    )
    run_p.add_argument(
        "--label", default="campaign", help="campaign label recorded in events"
    )
    run_p.add_argument(
        "--dry-run",
        action="store_true",
        help="classify and report planned actions, then exit without "
        "executing anything",
    )

    args = parser.parse_args(argv)
    from repro.common.errors import ReproError
    from repro.harness import campaign

    obs.claim_log_ownership()
    try:
        if args.command == "scan":
            cells = campaign.scan(args.run_dir)
            _print_campaign_scan(args.run_dir, cells, "", args.json)
            return 0

        if args.command == "run":
            if args.families or args.budgets:
                shards, cfg_by_kind = _campaign_grid(args, parser)
                campaign.create_campaign(
                    args.run_dir, shards, cfg_by_kind, label=args.label
                )
            else:
                campaign.load_campaign(args.run_dir)
            cells = campaign.scan(args.run_dir)
            if args.dry_run:
                # Report what plan() *would* do without touching the queue
                # or clearing any failure/partial evidence.
                planned = {"execute": 0, "regenerate": 0, "skip": 0}
                for cell in cells:
                    planned[cell.action] += 1
                _print_campaign_scan(args.run_dir, cells, "", args.json)
                if not args.json:
                    print(
                        f"planned: {planned['execute']} execute, "
                        f"{planned['regenerate']} regenerate, "
                        f"{planned['skip']} skip (dry run: nothing queued or ran)"
                    )
                return 0
            planned = campaign.plan(args.run_dir, cells=cells)
            statuses = None
        else:  # rerun
            statuses = campaign.normalize_statuses(args.status)
            cells = campaign.scan(args.run_dir)
            planned = campaign.plan(args.run_dir, statuses=statuses, cells=cells)

        counters = _run_campaign_worker(args, args.run_dir)
        result = {
            "run_dir": args.run_dir,
            "planned": planned,
            "worker": counters,
        }
        if not args.no_merge:
            merged = campaign.merge(args.run_dir)
            result["merged"] = campaign.CampaignLayout(args.run_dir).merged_path
            result["rows"] = len(merged["rows"])
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            print(
                f"planned: {planned['execute']} execute, "
                f"{planned['regenerate']} regenerate; "
                f"worker: {counters['cells_executed']} executed, "
                f"{counters['cells_regenerated']} regenerated, "
                f"{counters['steals']} stolen, {counters['requeues']} requeued"
            )
            if "merged" in result:
                print(f"merged {result['rows']} rows -> {result['merged']}")
        return 0
    except ReproError as exc:
        print(f"repro-campaign: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
