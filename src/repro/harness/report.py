"""Plain-text table rendering for figure/table regeneration.

Every experiment prints the same rows/series the paper's figure plots, as
aligned text tables (this repo regenerates *data*, not vector graphics).
"""

from __future__ import annotations

from collections.abc import Sequence


def format_budget(budget_bytes: int) -> str:
    """Human form of a hardware budget ('64K' style, matching the axes)."""
    if budget_bytes % 1024 == 0:
        return f"{budget_bytes // 1024}K"
    return str(budget_bytes)


def render_table(
    title: str,
    column_names: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned text table with a title rule.

    Ragged input is tolerated: short rows are padded with empty cells and
    extra cells beyond the widest row/header set get unnamed columns, so a
    diagnostic table never crashes the report it belongs to.
    """
    cells = [[str(value) for value in row] for row in rows]
    headers = [str(name) for name in column_names]
    columns = max([len(headers), *(len(row) for row in cells)], default=len(headers))
    headers += [""] * (columns - len(headers))
    widths = [len(header) for header in headers]
    for row in cells:
        row += [""] * (columns - len(row))
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells:
        lines.append("  ".join(value.rjust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def render_series_table(
    title: str,
    x_label: str,
    x_values: Sequence[int],
    series: dict[str, dict[int, float]],
    value_format: str = "{:.2f}",
) -> str:
    """Render one column per series, one row per x value (budget)."""
    names = sorted(series)
    rows = []
    for x in x_values:
        row: list[object] = [format_budget(x)]
        for name in names:
            value = series[name].get(x)
            row.append(value_format.format(value) if value is not None else "-")
        rows.append(row)
    return render_table(title, [x_label, *names], rows)
