"""Plain-text table rendering for figure/table regeneration.

Every experiment prints the same rows/series the paper's figure plots, as
aligned text tables (this repo regenerates *data*, not vector graphics).
"""

from __future__ import annotations

from collections.abc import Sequence


def format_budget(budget_bytes: int) -> str:
    """Human form of a hardware budget ('64K' style, matching the axes)."""
    if budget_bytes % 1024 == 0:
        return f"{budget_bytes // 1024}K"
    return str(budget_bytes)


def render_table(
    title: str,
    column_names: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned text table with a title rule.

    Ragged input is tolerated: short rows are padded with empty cells and
    extra cells beyond the widest row/header set get unnamed columns, so a
    diagnostic table never crashes the report it belongs to.
    """
    cells = [[str(value) for value in row] for row in rows]
    headers = [str(name) for name in column_names]
    columns = max([len(headers), *(len(row) for row in cells)], default=len(headers))
    headers += [""] * (columns - len(headers))
    widths = [len(header) for header in headers]
    for row in cells:
        row += [""] * (columns - len(row))
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells:
        lines.append("  ".join(value.rjust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


#: Column order of the unified classification table.  The five middle
#: columns are the campaign classes ("results" is the short header for
#: ``results_missing``).
CLASSIFICATION_COLUMNS = (
    "target",
    "mode",
    "cells",
    "completed",
    "results",
    "failed",
    "partial",
    "missing",
    "inferred",
    "based on",
)


def render_classification(title: str, reports: Sequence[dict]) -> str:
    """The shared dry-run classification table.

    One renderer, two callers: ``repro-figures --dry-run`` (one row per
    config target) and ``repro-campaign scan`` (one row per campaign).
    Each report carries ``target``/``mode``/``cells`` plus ``counts``
    keyed by the five campaign classes; ``inferred``/``based_on`` are
    config-target concepts and default off for campaign rows.
    """
    rows = []
    for report in reports:
        counts = report.get("counts", {})
        rows.append(
            (
                report["target"],
                report["mode"],
                report["cells"],
                counts.get("completed", 0),
                counts.get("results_missing", 0),
                counts.get("failed", 0),
                counts.get("partial", 0),
                counts.get("missing", 0),
                "yes" if report.get("inferred") else "no",
                ",".join(report.get("based_on", [])) or "-",
            )
        )
    return render_table(title, list(CLASSIFICATION_COLUMNS), rows)


def render_series_table(
    title: str,
    x_label: str,
    x_values: Sequence[int],
    series: dict[str, dict[int, float]],
    value_format: str = "{:.2f}",
) -> str:
    """Render one column per series, one row per x value (budget)."""
    names = sorted(series)
    rows = []
    for x in x_values:
        row: list[object] = [format_budget(x)]
        for name in names:
            value = series[name].get(x)
            row.append(value_format.format(value) if value is not None else "-")
        rows.append(row)
    return render_table(title, [x_label, *names], rows)
