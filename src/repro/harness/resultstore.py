"""Content-addressed on-disk store for per-cell sweep results.

The trace store (:mod:`repro.workloads.store`) made *traces* cheap,
addressable artifacts; this module applies the identical architecture one
level up, to the sweep **results** themselves.  Every (benchmark, family,
budget[, mode]) cell a figure sweep computes is memoized on disk under a
content key, so regenerating any figure after an unrelated change — or
assembling a derived table from an already-computed grid — performs zero
predictor work: no trace generation, no predictor construction, no
predictions.

* :func:`accuracy_key_payload` / :func:`ipc_key_payload` — the canonical
  key recipe.  A key digests everything that determines a cell's floats:
  the workload digest from the trace store (full profile + trace length +
  seed + format versions), the family's *serialized sizing config* (not
  just its name — a sizing change is a different predictor), the hardware
  budget, the evaluation engine (accuracy) or machine config and policy
  mode (IPC), the warm-up fraction, the result-format version and the
  measurement :data:`CODE_VERSION`.  Changing any component changes the
  key; stale entries simply stop matching.
* :class:`ResultStore` — a directory of checksummed JSON entries written
  through the shared atomic helper (:mod:`repro.common.atomic`).  An entry
  is never trusted on faith: the payload checksum and the full stored key
  are verified on every load, and a truncated, bit-flipped, foreign or
  otherwise inconsistent entry is detected, counted
  (``result_store.corrupt``), deleted and recomputed.  Corruption can cost
  time, never correctness.
* capacity — mtime-LRU eviction above ``REPRO_RESULT_STORE_CAPACITY``
  (default :data:`DEFAULT_RESULT_CAPACITY`), mirroring the trace store.

The store is enabled by pointing ``REPRO_RESULT_STORE`` at a directory (or
``repro-figures --result-store DIR``).  :mod:`repro.harness.sweep` layers
it under the serial sweeps and :mod:`repro.harness.parallel` under the
process-pool workers (workers share the store directory exactly like they
share the trace store), so a shard whose key hits returns its payload
without executing anything.

Statistics (hits/misses/writes/corrupt/evictions) are module-wide —
:func:`result_store_stats` — and mirrored into obs counters
(``result_store.*``) when profiling is enabled; the parallel executor
aggregates per-shard deltas into run manifests.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable, Mapping
from dataclasses import asdict, dataclass
from pathlib import Path

from repro import obs
from repro.common.atomic import atomic_path, stale_tmp_siblings
from repro.common.errors import ConfigurationError, ReproError

#: Bumped when the entry layout or key recipe changes; part of every key,
#: so old entries stop matching instead of being misread.
RESULT_SCHEMA = 1

#: Bumped whenever the *measurement semantics* change — a predictor update
#: rule fix, an engine change that alters results, a new warm-up policy.
#: Part of every key: results computed by older code are never served as
#: if the current code had produced them.  (Purely structural refactors
#: that provably keep results bit-identical do not require a bump.)
CODE_VERSION = 1

#: Default maximum entries per store directory (mtime LRU).  Results are
#: small JSON files, so the default is far above the trace store's.
DEFAULT_RESULT_CAPACITY = 65536

#: Hex digits of the key kept in entry filenames (the full key is stored —
#: and verified — inside the entry itself).
DIGEST_PREFIX = 24


class ResultStoreError(ReproError):
    """An entry failed validation (corrupt, foreign, or inconsistent)."""


# -- key recipe ----------------------------------------------------------------


def result_digest(payload: Mapping) -> str:
    """sha256 of the canonical JSON form of ``payload``.

    Canonical means key-sorted with minimal separators, so the digest is
    invariant to dict insertion order and whitespace — two processes (or
    two config files) describing the same cell always derive the same key.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _workload_digest(benchmark: str, instructions: int, seed: int) -> str:
    """The trace store's content digest for one workload — reused verbatim
    so anything that would invalidate a stored trace (a profile constant,
    a format version) invalidates every result computed from it."""
    from repro.workloads.spec2000 import get_profile
    from repro.workloads.store import trace_digest

    return trace_digest(get_profile(benchmark), int(instructions), int(seed))


def _family_spec_payload(family: str, budget_bytes: int) -> dict:
    """The serialized FamilySpec sizing config — the same payload parallel
    workers rebuild predictors from, so a sizing-rule change (different
    config for the same budget) is a different key, not a false hit."""
    from repro.predictors import registry

    return registry.serialize_spec(family, budget_bytes)


def accuracy_key_payload(
    benchmark: str,
    family: str,
    budget_bytes: int,
    instructions: int,
    engine: str,
    warmup_fraction: float,
    seed: int = 1,
) -> dict:
    """Everything that determines one accuracy cell, as a JSON-able dict."""
    return {
        "result_schema": RESULT_SCHEMA,
        "code_version": CODE_VERSION,
        "kind": "accuracy",
        "workload": _workload_digest(benchmark, instructions, seed),
        "spec": _family_spec_payload(family, budget_bytes),
        "budget_bytes": int(budget_bytes),
        "engine": str(engine),
        "warmup_fraction": float(warmup_fraction),
    }


def ipc_key_payload(
    benchmark: str,
    family: str,
    budget_bytes: int,
    mode: str,
    instructions: int,
    machine: Mapping,
    seed: int = 1,
) -> dict:
    """Everything that determines one IPC (cycle-simulation) cell."""
    return {
        "result_schema": RESULT_SCHEMA,
        "code_version": CODE_VERSION,
        "kind": "ipc",
        "workload": _workload_digest(benchmark, instructions, seed),
        "spec": _family_spec_payload(family, budget_bytes),
        "budget_bytes": int(budget_bytes),
        "mode": str(mode),
        "machine": dict(machine),
    }


def accuracy_result_key(
    benchmark: str,
    family: str,
    budget_bytes: int,
    instructions: int,
    engine: str,
    warmup_fraction: float,
    seed: int = 1,
) -> str:
    """Content key of one accuracy cell (see :func:`accuracy_key_payload`)."""
    return result_digest(
        accuracy_key_payload(
            benchmark, family, budget_bytes, instructions, engine, warmup_fraction, seed
        )
    )


def ipc_result_key(
    benchmark: str,
    family: str,
    budget_bytes: int,
    mode: str,
    instructions: int,
    machine: Mapping,
    seed: int = 1,
) -> str:
    """Content key of one IPC cell (see :func:`ipc_key_payload`)."""
    return result_digest(
        ipc_key_payload(benchmark, family, budget_bytes, mode, instructions, machine, seed)
    )


# -- statistics ----------------------------------------------------------------

RESULT_STAT_KEYS = ("hits", "misses", "corrupt", "writes", "evictions")
_stats = dict.fromkeys(RESULT_STAT_KEYS, 0)


def result_store_stats() -> dict:
    """Process-wide result-store statistics (across every instance)."""
    return dict(_stats)


def reset_result_store_stats() -> None:
    """Zero the statistics (tests and fresh measurement windows)."""
    for key in RESULT_STAT_KEYS:
        _stats[key] = 0


def _count(key: str, n: int = 1) -> None:
    _stats[key] += n
    if obs.enabled():
        obs.counter(f"result_store.{key}").inc(n)
    if obs.log_path() is not None:
        from repro.obs.events import emit_store  # deferred: layering

        emit_store("result", key, n)


# -- cell identity --------------------------------------------------------------


@dataclass(frozen=True)
class ResultCell:
    """Human-readable identity of one stored result (filename + audit)."""

    kind: str  # "accuracy" | "ipc"
    benchmark: str
    family: str
    budget_bytes: int
    mode: str = ""  # ipc cells only

    @property
    def stem(self) -> str:
        """Filename stem; readable on disk, disambiguated by the digest."""
        parts = [self.kind, self.benchmark, self.family, str(self.budget_bytes)]
        if self.mode:
            parts.append(self.mode)
        return "__".join(parts)


# -- the store -----------------------------------------------------------------


def result_store_path() -> str | None:
    """The configured store directory (``REPRO_RESULT_STORE``), or None."""
    raw = os.environ.get("REPRO_RESULT_STORE", "").strip()
    return raw or None


def result_store_capacity() -> int:
    """Maximum entries: ``REPRO_RESULT_STORE_CAPACITY`` or the default."""
    raw = os.environ.get("REPRO_RESULT_STORE_CAPACITY")
    if raw is None or not raw.strip():
        return DEFAULT_RESULT_CAPACITY
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_RESULT_STORE_CAPACITY must be an integer >= 1, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"REPRO_RESULT_STORE_CAPACITY must be >= 1, got {value}"
        )
    return value


class ResultStore:
    """A directory of content-addressed, checksummed sweep-result entries.

    Safe for concurrent use by sweep workers: entries are immutable once
    written (same key => byte-identical payload), writes are atomic, and a
    reader that loses a race simply recomputes.
    """

    def __init__(self, root: str | os.PathLike, capacity: int | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        """Entry cap: constructor override or the environment default."""
        return self._capacity if self._capacity is not None else result_store_capacity()

    def entry_path(self, key: str, cell: ResultCell) -> Path:
        """On-disk location of one entry (exists or not)."""
        return self.root / f"{cell.stem}__{key[:DIGEST_PREFIX]}.json"

    def _read(self, path: Path, key: str, cell: ResultCell) -> dict:
        """Parse and fully validate one entry; raises on any inconsistency."""
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ResultStoreError(f"unreadable result entry {path}: {exc}") from None
        if not isinstance(data, dict) or data.get("schema") != RESULT_SCHEMA:
            raise ResultStoreError(
                f"result entry {path} has schema {data.get('schema') if isinstance(data, dict) else '?'!r}, "
                f"expected {RESULT_SCHEMA}"
            )
        if data.get("key") != key:
            # A well-formed entry parked under this name that answers a
            # *different* question (hand-copied or renamed) — internally
            # consistent, but not this cell.
            raise ResultStoreError(
                f"result entry {path} holds key {data.get('key')!r}, expected {key!r}"
            )
        if data.get("cell") != asdict(cell):
            raise ResultStoreError(
                f"result entry {path} describes cell {data.get('cell')!r}, "
                f"expected {asdict(cell)!r}"
            )
        payload = data.get("payload")
        if not isinstance(payload, dict):
            raise ResultStoreError(f"result entry {path} has no payload object")
        if data.get("checksum") != result_digest(payload):
            raise ResultStoreError(
                f"result entry {path} failed its payload checksum (bit rot or "
                f"truncated write)"
            )
        return payload

    def load(self, key: str, cell: ResultCell) -> dict | None:
        """The stored payload, or None when absent or corrupt.

        A corrupt entry (truncation, bit flip, checksum/key mismatch) is
        counted, deleted, and reported as a miss — never trusted, never
        fatal.
        """
        path = self.entry_path(key, cell)
        if not path.exists():
            return None
        try:
            payload = self._read(path, key, cell)
        except ResultStoreError:
            _count("corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        _count("hits")
        return payload

    def probe(self, key: str, cell: ResultCell) -> bool:
        """Non-mutating hit check (``--dry-run`` classification): True only
        for an entry that would validate.  Counts nothing, deletes nothing."""
        path = self.entry_path(key, cell)
        if not path.exists():
            return False
        try:
            self._read(path, key, cell)
        except ResultStoreError:
            return False
        return True

    def save(self, key: str, cell: ResultCell, payload: Mapping) -> dict:
        """Persist ``payload`` under its content key; returns the payload as
        it will read back (a JSON round-trip, so floats are bit-stable)."""
        payload = json.loads(json.dumps(payload))
        path = self.entry_path(key, cell)
        for stale in stale_tmp_siblings(path):
            # A writer died mid-write earlier; its staging file is garbage.
            try:
                os.unlink(stale)
            except OSError:
                pass
        entry = {
            "schema": RESULT_SCHEMA,
            "key": key,
            "cell": asdict(cell),
            "payload": payload,
            "checksum": result_digest(payload),
        }
        with atomic_path(path) as tmp:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, indent=2, sort_keys=True)
                handle.write("\n")
        _count("writes")
        self._evict_over_capacity()
        return payload

    def get_or_compute(
        self, key: str, cell: ResultCell, compute: Callable[[], Mapping]
    ) -> dict:
        """Load the entry, or compute + persist it on a miss.

        Both paths return a JSON-round-tripped payload, so cached and
        freshly-computed cells are byte-identical downstream.
        """
        cached = self.load(key, cell)
        if cached is not None:
            return cached
        _count("misses")
        return self.save(key, cell, compute())

    def entries(self) -> list[Path]:
        """Every entry file, oldest first (mtime, then name for stability)."""
        paths = []
        for path in self.root.glob("*.json"):
            try:
                paths.append((path.stat().st_mtime_ns, path.name, path))
            except OSError:
                continue  # concurrently evicted
        return [path for _, _, path in sorted(paths)]

    def _evict_over_capacity(self) -> None:
        entries = self.entries()
        excess = len(entries) - self.capacity
        for path in entries[:max(excess, 0)]:
            try:
                path.unlink()
            except OSError:
                continue
            _count("evictions")


# -- the process-wide active store ---------------------------------------------

_active: ResultStore | None = None


def active_result_store() -> ResultStore | None:
    """The store named by ``REPRO_RESULT_STORE``, or None when unset.

    Re-resolved on every call so tests (and the CLI) can repoint the
    process mid-flight; the instance is reused while the path is stable.
    """
    global _active
    path = result_store_path()
    if path is None:
        _active = None
        return None
    if _active is None or _active.root != Path(path):
        _active = ResultStore(path)
    return _active
