"""Saturating-counter tables.

The pattern history tables of every two-level predictor in the paper are
arrays of 2-bit saturating counters; choosers and some components use other
widths.  ``CounterTable`` wraps a numpy array with the increment/decrement
semantics and exposes both scalar and whole-table operations.
"""

from __future__ import annotations

import numpy as np

from repro.common.bits import is_power_of_two
from repro.common.errors import ConfigurationError


class CounterTable:
    """A table of ``size`` unsigned saturating counters of ``bits`` width.

    Counters saturate at ``[0, 2**bits - 1]``.  The taken/not-taken decision
    threshold is the weakly-taken boundary: a counter predicts taken when its
    value is in the upper half of the range.
    """

    def __init__(self, size: int, bits: int = 2, init: int | None = None) -> None:
        if not is_power_of_two(size):
            raise ConfigurationError(f"counter table size must be a power of two, got {size}")
        if bits < 1 or bits > 8:
            raise ConfigurationError(f"counter width must be in [1, 8] bits, got {bits}")
        self.size = size
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        if init is None:
            # Weakly-not-taken initialization: the highest value that still
            # predicts not-taken, so a single taken outcome flips the entry.
            init = self.threshold - 1
        if not 0 <= init <= self.max_value:
            raise ConfigurationError(
                f"initial counter value {init} out of range for {bits}-bit counter"
            )
        self._values = np.full(size, init, dtype=np.int16)

    def __len__(self) -> int:
        return self.size

    @property
    def storage_bits(self) -> int:
        """Hardware storage consumed by the table, in bits."""
        return self.size * self.bits

    def value(self, index: int) -> int:
        """Raw counter value at ``index``."""
        return int(self._values[index])

    def predict(self, index: int) -> bool:
        """Direction prediction: True (taken) when in the upper half."""
        return bool(self._values[index] >= self.threshold)

    def confidence(self, index: int) -> int:
        """Distance from the decision boundary (0 = weakest)."""
        value = int(self._values[index])
        if value >= self.threshold:
            return value - self.threshold
        return self.threshold - 1 - value

    def update(self, index: int, taken: bool) -> None:
        """Saturating increment (taken) or decrement (not taken)."""
        value = self._values[index]
        if taken:
            if value < self.max_value:
                self._values[index] = value + 1
        elif value > 0:
            self._values[index] = value - 1

    def strengthen(self, index: int, direction: bool) -> None:
        """Alias of :meth:`update` that reads better at call sites that
        reinforce an agreeing counter rather than train toward an outcome."""
        self.update(index, direction)

    def set_value(self, index: int, value: int) -> None:
        """Force a counter to ``value`` (used by tests and recovery paths)."""
        if not 0 <= value <= self.max_value:
            raise ConfigurationError(f"counter value {value} out of range")
        self._values[index] = value

    def read_line(self, line_index: int, line_entries: int) -> np.ndarray:
        """Return a copy of one aligned line of ``line_entries`` counters.

        Models a wide SRAM read: gshare.fast fetches a whole line of
        candidate counters per access.
        """
        if not is_power_of_two(line_entries):
            raise ConfigurationError(
                f"line_entries must be a power of two, got {line_entries}"
            )
        start = line_index * line_entries
        if start < 0 or start + line_entries > self.size:
            raise ConfigurationError(
                f"line {line_index} x {line_entries} out of range for table of {self.size}"
            )
        return self._values[start : start + line_entries].copy()

    def snapshot(self) -> np.ndarray:
        """Copy of the full table contents (tests/checkpointing)."""
        return self._values.copy()

    def restore(self, values: np.ndarray) -> None:
        """Restore a snapshot taken by :meth:`snapshot`."""
        if values.shape != self._values.shape:
            raise ConfigurationError("snapshot shape mismatch")
        self._values[:] = values
