"""Small bit-manipulation helpers shared by predictors and the simulator.

Branch predictors are fundamentally bit machines: indices are formed by
masking, XORing and folding PC and history bits.  Centralizing the helpers
keeps each predictor's indexing function short and auditable against its
paper description.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises:
        ConfigurationError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ConfigurationError(f"{value!r} is not a positive power of two")
    return value.bit_length() - 1


def mask(width: int) -> int:
    """Return a bitmask of ``width`` low bits (``mask(3) == 0b111``)."""
    if width < 0:
        raise ConfigurationError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def fold(value: int, in_width: int, out_width: int) -> int:
    """XOR-fold the low ``in_width`` bits of ``value`` down to ``out_width`` bits.

    Folding is the standard hardware trick for hashing a wide field into a
    narrow index with a few XOR gates: the input is sliced into
    ``out_width``-bit chunks which are XORed together.  ``fold(x, w, w)`` is
    the identity on the low ``w`` bits.
    """
    if out_width <= 0:
        if out_width == 0:
            return 0
        raise ConfigurationError(f"fold out_width must be >= 0, got {out_width}")
    value &= mask(in_width)
    folded = 0
    while value:
        folded ^= value & mask(out_width)
        value >>= out_width
    return folded


def bit_reverse(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value``.

    Used by the skewing functions of gskew-style predictors.
    """
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``value`` left by ``amount``."""
    if width <= 0:
        raise ConfigurationError(f"rotate width must be positive, got {width}")
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def hash_pc(pc: int, width: int) -> int:
    """Hash a program counter into ``width`` bits.

    Instruction addresses are 4-byte aligned in our traces, so the two low
    bits carry no information; they are discarded before folding.
    """
    return fold(pc >> 2, 32, width)
