"""Deterministic random-number plumbing.

Every stochastic choice in the workload generator must be reproducible from a
single seed so that experiments are rerunnable bit-for-bit.  ``derive`` gives
each named subsystem an independent stream from a root seed, so adding a new
consumer never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive(seed: int, *names: str | int) -> np.random.Generator:
    """Return a Generator for the stream identified by ``seed`` and ``names``.

    The stream is independent (by construction via SHA-256) of any stream
    derived with a different name path.
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    stream_seed = int.from_bytes(digest.digest()[:8], "little")
    return np.random.default_rng(stream_seed)


def derive_seed(seed: int, *names: str | int) -> int:
    """Like :func:`derive` but returns the raw integer sub-seed."""
    digest = hashlib.sha256()
    digest.update(str(seed).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest()[:8], "little")
