"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch configuration and usage mistakes without also swallowing genuine bugs
(``ValueError``/``TypeError`` raised by third-party code, for instance).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or impossible parameters."""


class BudgetError(ConfigurationError):
    """A hardware budget cannot be realized by the requested predictor."""


class ProtocolError(ReproError):
    """A predictor or simulator API was driven out of order.

    Example: calling ``update`` for a branch that was never predicted, or
    resolving the same in-flight branch twice.
    """


class TraceError(ReproError):
    """A workload trace is malformed or internally inconsistent."""
