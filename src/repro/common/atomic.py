"""Atomic file writes: tmp-file + rename, shared by every persistence layer.

POSIX ``rename(2)`` within one directory is atomic: a reader observes
either the old file or the complete new one, never a torn write.
Everything in this repo that persists state another process may read
concurrently — trace-store entries, parallel-sweep shard checkpoints, run
manifests — funnels through these helpers, so a writer killed mid-write
can only leave a ``*.tmp.<pid>.<tid>`` dropping behind, never a truncated
artifact under the final name.
"""

from __future__ import annotations

import json
import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager


def _staging_name(path: str) -> str:
    """A collision-free staging sibling: PID for cross-process writers,
    thread id for concurrent writers inside one process (the service
    daemon's worker threads write job state from several threads)."""
    return f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"


@contextmanager
def atomic_path(path: str | os.PathLike) -> Iterator[str]:
    """Yield a temporary sibling of ``path``; rename it into place on success.

    The temporary name embeds the writer's PID and thread id so concurrent
    writers of the same file never collide on the staging name.  On any
    error the staged file is removed and the final path is left untouched.
    """
    path = os.fspath(path)
    tmp = _staging_name(path)
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: str | os.PathLike, data: dict) -> None:
    """Atomically write ``data`` as pretty, key-sorted JSON."""
    with atomic_path(path) as tmp:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")


def exclusive_create_json(path: str | os.PathLike, data: dict) -> bool:
    """Atomically create ``path`` with content; False if it already exists.

    The create-or-fail primitive behind work-queue claim files: exactly one
    of any number of concurrent callers wins.  The content is staged to a
    PID-suffixed sibling first and published with ``link(2)`` — which both
    fails if the name exists (the exclusivity) and makes the complete JSON
    appear *with* the name, so no reader can ever observe an empty or torn
    claim from a live writer.  (A bare ``O_CREAT|O_EXCL`` + write is not
    enough: the name exists before the content does, and a concurrent
    reader would misread the gap as a dead writer's torn claim.)  On
    filesystems without hard links the O_EXCL file-descriptor path is the
    fallback — same exclusivity, weaker content atomicity.
    """
    path = os.fspath(path)
    tmp = _staging_name(path)
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    try:
        os.link(tmp, path)
        return True
    except FileExistsError:
        return False
    except OSError:
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return True
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def stale_tmp_siblings(path: str | os.PathLike) -> list[str]:
    """Leftover staging files of ``path`` from writers that died mid-write."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    prefix = f"{os.path.basename(path)}.tmp."
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return [os.path.join(directory, n) for n in names if n.startswith(prefix)]
