"""Shared low-level utilities: bits, counters, histories, RNG, errors."""

from repro.common.atomic import atomic_path, atomic_write_json, stale_tmp_siblings
from repro.common.bits import fold, hash_pc, is_power_of_two, log2_exact, mask
from repro.common.counters import CounterTable
from repro.common.errors import (
    BudgetError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    TraceError,
)
from repro.common.history import HistoryRegister, LocalHistoryTable
from repro.common.rng import derive, derive_seed

__all__ = [
    "BudgetError",
    "ConfigurationError",
    "CounterTable",
    "HistoryRegister",
    "LocalHistoryTable",
    "ProtocolError",
    "ReproError",
    "TraceError",
    "atomic_path",
    "atomic_write_json",
    "derive",
    "derive_seed",
    "fold",
    "hash_pc",
    "is_power_of_two",
    "log2_exact",
    "mask",
    "stale_tmp_siblings",
]
