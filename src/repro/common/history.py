"""History registers.

Global and local branch histories are shift registers of outcome bits.  The
paper's predictors update history *speculatively* at prediction time and
repair it on a misprediction; ``HistoryRegister`` supports both through
checkpoint/restore, and ``LocalHistoryTable`` provides the per-branch
histories used by local and hybrid predictors.
"""

from __future__ import annotations

import numpy as np

from repro.common.bits import is_power_of_two, mask
from repro.common.errors import ConfigurationError


class HistoryRegister:
    """A global history shift register of ``length`` outcome bits.

    Bit 0 is the most recent outcome.  ``value`` is the packed integer view
    used to form prediction indices.
    """

    def __init__(self, length: int) -> None:
        if length < 0:
            raise ConfigurationError(f"history length must be >= 0, got {length}")
        self.length = length
        self._value = 0

    @property
    def value(self) -> int:
        """Packed history bits; most recent outcome in bit 0."""
        return self._value

    def push(self, taken: bool) -> None:
        """Shift in a new outcome as the most recent bit."""
        if self.length == 0:
            return
        self._value = ((self._value << 1) | int(taken)) & mask(self.length)

    def bit(self, age: int) -> bool:
        """Outcome of the branch ``age`` steps in the past (0 = newest)."""
        if not 0 <= age < max(self.length, 1):
            raise ConfigurationError(f"history bit age {age} out of range")
        return bool((self._value >> age) & 1)

    def checkpoint(self) -> int:
        """Snapshot for misprediction recovery."""
        return self._value

    def restore(self, snapshot: int) -> None:
        """Restore a snapshot taken before a mispredicted branch, then the
        caller pushes the corrected outcome."""
        self._value = snapshot & mask(self.length)

    def clear(self) -> None:
        """Reset to all-not-taken history."""
        self._value = 0


class LocalHistoryTable:
    """A table of per-branch local histories (first level of a PAg/PAs).

    ``entries`` rows of ``length``-bit shift registers, indexed by low PC
    bits.  Speculative update with checkpointing is supported at row
    granularity: the simulator checkpoints only the row it touches.
    """

    def __init__(self, entries: int, length: int) -> None:
        if not is_power_of_two(entries):
            raise ConfigurationError(f"local history entries must be a power of two, got {entries}")
        if length <= 0:
            raise ConfigurationError(f"local history length must be positive, got {length}")
        self.entries = entries
        self.length = length
        self._rows = np.zeros(entries, dtype=np.int64)

    @property
    def storage_bits(self) -> int:
        """Hardware state held by the table, in bits."""
        return self.entries * self.length

    def row_index(self, pc: int) -> int:
        """Which row the branch at ``pc`` maps to."""
        return (pc >> 2) & (self.entries - 1)

    def read(self, pc: int) -> int:
        """Packed local history for the branch at ``pc``."""
        return int(self._rows[self.row_index(pc)])

    def push(self, pc: int, taken: bool) -> None:
        """Shift an outcome into the branch's local history."""
        row = self.row_index(pc)
        self._rows[row] = ((int(self._rows[row]) << 1) | int(taken)) & mask(self.length)

    def checkpoint(self, pc: int) -> tuple[int, int]:
        """Snapshot (row, value) for the row ``pc`` maps to."""
        row = self.row_index(pc)
        return row, int(self._rows[row])

    def restore(self, snapshot: tuple[int, int]) -> None:
        """Restore a row snapshot taken by :meth:`checkpoint`."""
        row, value = snapshot
        self._rows[row] = value

    def clear(self) -> None:
        """Reset every local history to all-not-taken."""
        self._rows[:] = 0
