"""The batch evaluation engine: whole-trace predictor runs in array code.

:func:`evaluate_stream` replays a ``(pc, taken)`` branch stream through a
predictor using chunked NumPy kernels and returns the full per-branch
prediction stream.  The contract is **bit-exactness** with the scalar
``predict``/``update`` protocol: identical predictions for every branch and
identical final predictor state (tables, history register, stats, pending
delayed updates).  ``tests/test_differential_batch.py`` enforces the
contract with :mod:`repro.batch.diff`.

How each family is batched
--------------------------

Trace-driven table predictors share one crucial property: their table
*indices* depend only on the PC and the true outcome history, both known
for the whole trace up front.  Only the counter contents carry a sequential
dependence, and each counter cell evolves independently along its own
update subsequence — which :class:`repro.batch.kernels.CounterScan` replays
loop-free.

* **bimodal / gshare / gshare.fast** — one PHT, one read + one write per
  branch on the same cell: vectorized index precompute + one scan per
  chunk.  gshare.fast's non-speculative update delay is an event-time
  shift (a write issued by branch ``t`` becomes visible at ``t + delay``),
  handled exactly by the scan's delayed sampling.
* **Bi-Mode** — the choice table steers which direction table trains, and
  the choice partial-update depends on the steered table's prediction, so
  the three tables are mutually sequentially coupled and no per-cell scan
  exists.  The batch kernel vectorizes everything precomputable (history
  packing, both index streams) and runs the residual counter coupling in a
  tight plain-int loop — exact, and still well ahead of the scalar object
  protocol.

IPC (cycle-level) simulation intentionally stays on the scalar model; the
batch engine covers functional accuracy only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.batch.kernels import CounterScan, hash_pcs, pack_outcomes, packed_history
from repro.common.bits import mask
from repro.common.errors import ConfigurationError, ProtocolError
from repro.core.gshare_fast import PC_SELECT_BITS, GshareFastPredictor
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.gshare import GsharePredictor
from repro.workloads.trace import Trace

#: Default branches per chunk: large enough to amortize kernel launches,
#: small enough that every intermediate array stays cache-friendly.
DEFAULT_CHUNK = 1 << 16


def _record_chunk(kernel_name: str, branches: int, seconds: float) -> None:
    """Per-chunk kernel accounting (called only when profiling)."""
    registry = obs.registry()
    registry.counter("batch.chunks").inc()
    registry.counter("batch.chunk_branches").inc(branches)
    registry.timer(f"batch.chunk.{kernel_name}").observe(seconds)
    registry.histogram("batch.chunk_seconds").observe(seconds)


@dataclass(frozen=True)
class BatchResult:
    """Full per-branch outcome of one batch evaluation."""

    predictor: str
    predictions: np.ndarray  #: bool, one prediction per conditional branch
    outcomes: np.ndarray  #: bool, the true directions

    @property
    def branches(self) -> int:
        """Number of branches evaluated."""
        return len(self.predictions)

    @property
    def mispredictions(self) -> int:
        """Total wrong predictions over the stream."""
        return int(np.count_nonzero(self.predictions != self.outcomes))

    def mispredictions_after(self, warmup_branches: int) -> int:
        """Wrong predictions, ignoring the first ``warmup_branches``."""
        wrong = self.predictions[warmup_branches:] != self.outcomes[warmup_branches:]
        return int(np.count_nonzero(wrong))


# -- single-PHT families -------------------------------------------------------


class _SingleTableKernel:
    """Chunk loop shared by every one-read-one-write-per-branch family."""

    #: Branches of delay between a branch's update issue and visibility.
    delay = 0

    def __init__(self, predictor: BranchPredictor) -> None:
        self.predictor = predictor
        self.table = predictor.table.snapshot()  # int16, the scan upcasts
        self.max_value = predictor.table.max_value
        self.threshold = predictor.table.threshold
        self.history_length = 0

    def indices(self, pcs: np.ndarray, history: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def run(self, pcs: np.ndarray, takens: np.ndarray, chunk: int) -> np.ndarray:
        n = len(pcs)
        predictions = np.empty(n, dtype=bool)
        pend_cells = np.zeros(0, dtype=np.int64)
        pend_times = np.zeros(0, dtype=np.int64)
        pend_takens = np.zeros(0, dtype=bool)
        length = self.history_length
        profiling = obs.enabled()
        for start in range(0, n, chunk):
            chunk_started = time.perf_counter() if profiling else 0.0
            stop = min(start + chunk, n)
            cpcs = pcs[start:stop]
            ctakens = takens[start:stop]
            prefix = takens[max(0, start - length) : start] if length else None
            history = packed_history(ctakens, length, prefix)
            cells = self.indices(cpcs, history)
            if self.delay == 0:
                # Every branch reads the cell it writes, with the write
                # immediately visible: the scan's before-states *are* the
                # predictions — no sampling pass needed.
                scan = CounterScan(cells, None, ctakens, self.table, self.max_value)
                predictions[start:stop] = scan.states_before_writes() >= self.threshold
                scan.commit()
            else:
                times = np.arange(start, stop, dtype=np.int64)
                w_cells = np.concatenate([pend_cells, cells])
                w_times = np.concatenate([pend_times, times])
                w_takens = np.concatenate([pend_takens, ctakens])
                scan = CounterScan(w_cells, w_times, w_takens, self.table, self.max_value)
                state = scan.sample(cells, times, self.delay)
                predictions[start:stop] = state >= self.threshold
                visible_through = (stop - 1) - self.delay
                scan.commit(visible_through)
                keep = w_times > visible_through
                pend_cells, pend_times, pend_takens = (
                    w_cells[keep],
                    w_times[keep],
                    w_takens[keep],
                )
            if profiling:
                _record_chunk(
                    self.predictor.name, stop - start, time.perf_counter() - chunk_started
                )
        self._pending = list(zip(pend_cells.tolist(), (pend_takens != 0).tolist()))
        return predictions

    def writeback(self, takens: np.ndarray) -> None:
        """Mirror the scalar run's side effects onto the predictor object."""
        self.predictor.table.restore(self.table)
        if self.history_length:
            self.predictor.history.restore(
                pack_outcomes(takens, self.predictor.history.length)
            )


class _BimodalKernel(_SingleTableKernel):
    def __init__(self, predictor: BimodalPredictor) -> None:
        super().__init__(predictor)
        self.size_mask = predictor.table.size - 1

    def indices(self, pcs: np.ndarray, history: np.ndarray) -> np.ndarray:
        return (pcs >> 2) & self.size_mask


class _GshareKernel(_SingleTableKernel):
    def __init__(self, predictor: GsharePredictor) -> None:
        super().__init__(predictor)
        self.history_length = predictor.history.length
        self.index_bits = predictor.index_bits

    def indices(self, pcs: np.ndarray, history: np.ndarray) -> np.ndarray:
        return (hash_pcs(pcs, self.index_bits) ^ history) & mask(self.index_bits)


class _GshareFastKernel(_SingleTableKernel):
    def __init__(self, predictor: GshareFastPredictor) -> None:
        super().__init__(predictor)
        self.history_length = predictor.history.length
        self.index_bits = predictor.index_bits
        self.buffer_bits = predictor.buffer_bits
        self.staleness = predictor.staleness
        self.delay = predictor.update_delay

    def indices(self, pcs: np.ndarray, history: np.ndarray) -> np.ndarray:
        high = (history >> self.staleness) & mask(self.index_bits - self.buffer_bits)
        pc_bits = np.zeros_like(pcs)
        select = (pcs >> 2) & mask(PC_SELECT_BITS)
        # fold9 of the select bits down to the buffer width
        width = self.buffer_bits
        while np.any(select):
            pc_bits ^= select & mask(width)
            select >>= width
        low = (pc_bits ^ history) & mask(width)
        return (high << width) | low

    def writeback(self, takens: np.ndarray) -> None:
        super().writeback(takens)
        # Reconstruct the delayed-update FIFO the scalar run would hold.
        self.predictor._deferred_updates.restore(self._pending)


# -- Bi-Mode -------------------------------------------------------------------


class _BiModeKernel:
    """Vectorized precompute + exact sequential counter core for Bi-Mode."""

    def __init__(self, predictor: BiModePredictor) -> None:
        self.predictor = predictor

    def run(self, pcs: np.ndarray, takens: np.ndarray, chunk: int) -> np.ndarray:
        predictor = self.predictor
        n = len(pcs)
        length = predictor.history.length
        direction_bits = predictor.direction_index_bits
        choice_mask = predictor.choice_table.size - 1
        direction_threshold = predictor.taken_table.threshold
        direction_max = predictor.taken_table.max_value
        choice_threshold = predictor.choice_table.threshold
        choice_max = predictor.choice_table.max_value

        taken_tbl = predictor.taken_table.snapshot().tolist()
        not_taken_tbl = predictor.not_taken_table.snapshot().tolist()
        choice_tbl = predictor.choice_table.snapshot().tolist()

        predictions = np.empty(n, dtype=bool)
        profiling = obs.enabled()
        for start in range(0, n, chunk):
            chunk_started = time.perf_counter() if profiling else 0.0
            stop = min(start + chunk, n)
            cpcs = pcs[start:stop]
            ctakens = takens[start:stop]
            prefix = takens[max(0, start - length) : start]
            history = packed_history(ctakens, length, prefix)
            d_idx = (hash_pcs(cpcs, direction_bits) ^ history) & mask(direction_bits)
            c_idx = (cpcs >> 2) & choice_mask
            out = self._replay(
                d_idx.tolist(),
                c_idx.tolist(),
                ctakens.tolist(),
                taken_tbl,
                not_taken_tbl,
                choice_tbl,
                direction_threshold,
                direction_max,
                choice_threshold,
                choice_max,
            )
            predictions[start:stop] = out
            if profiling:
                _record_chunk(
                    predictor.name, stop - start, time.perf_counter() - chunk_started
                )
        self._tables = (taken_tbl, not_taken_tbl, choice_tbl)
        return predictions

    @staticmethod
    def _replay(
        d_idx: list[int],
        c_idx: list[int],
        takens: list[bool],
        taken_tbl: list[int],
        not_taken_tbl: list[int],
        choice_tbl: list[int],
        direction_threshold: int,
        direction_max: int,
        choice_threshold: int,
        choice_max: int,
    ) -> list[bool]:
        # The choice table steers which direction table speaks *and* trains,
        # while its own partial update depends on that table's prediction —
        # a cyclic dependence that rules out the per-cell scan, so the
        # counter core stays a (plain-int, precomputed-index) loop.
        predictions = []
        for d, c, taken in zip(d_idx, c_idx, takens):
            choice_value = choice_tbl[c]
            choose_taken = choice_value >= choice_threshold
            table = taken_tbl if choose_taken else not_taken_tbl
            prediction = table[d] >= direction_threshold
            predictions.append(prediction)
            # Partial update: skip the choice counter when the selected
            # direction table was right but disagreed with the choice.
            if not (prediction == taken and choose_taken != taken):
                if taken:
                    if choice_value < choice_max:
                        choice_tbl[c] = choice_value + 1
                elif choice_value > 0:
                    choice_tbl[c] = choice_value - 1
            value = table[d]
            if taken:
                if value < direction_max:
                    table[d] = value + 1
            elif value > 0:
                table[d] = value - 1
        return predictions

    def writeback(self, takens: np.ndarray) -> None:
        predictor = self.predictor
        taken_tbl, not_taken_tbl, choice_tbl = self._tables
        dtype = predictor.taken_table.snapshot().dtype
        predictor.taken_table.restore(np.asarray(taken_tbl, dtype=dtype))
        predictor.not_taken_table.restore(np.asarray(not_taken_tbl, dtype=dtype))
        predictor.choice_table.restore(np.asarray(choice_tbl, dtype=dtype))
        predictor.history.restore(pack_outcomes(takens, predictor.history.length))


# -- dispatch ------------------------------------------------------------------

#: Kernel implementations by the name a FamilySpec's ``batch_kernel`` flag
#: uses.  A family opts into batch evaluation by declaring one of these
#: names in its registry spec — no edits here needed.
KERNELS = {
    "bimodal": _BimodalKernel,
    "gshare": _GshareKernel,
    "gshare_fast": _GshareFastKernel,
    "bimode": _BiModeKernel,
}


def _kernel_for(predictor: BranchPredictor):
    """The kernel class for ``predictor``, or None for scalar-only types.

    Dispatch goes through the family registry's capability flag and matches
    the predictor's *exact* type: a subclass may override indexing or
    update rules the kernel would silently ignore.
    """
    from repro.predictors import registry

    spec = registry.spec_for_predictor(predictor)
    if spec is None or spec.batch_kernel is None:
        return None
    try:
        return KERNELS[spec.batch_kernel]
    except KeyError:
        raise ConfigurationError(
            f"family {spec.name!r} declares batch kernel {spec.batch_kernel!r}, "
            f"which this engine does not implement "
            f"(known: {', '.join(sorted(KERNELS))})"
        ) from None


def supports_batch(predictor: BranchPredictor) -> bool:
    """True when ``predictor``'s family declares a bit-exact batch kernel.

    Exact-type dispatch (via :func:`repro.predictors.registry.
    spec_for_predictor`): a subclass never inherits its parent's kernel.
    """
    return _kernel_for(predictor) is not None


def evaluate_stream(
    predictor: BranchPredictor,
    pcs: np.ndarray,
    takens: np.ndarray,
    chunk_branches: int = DEFAULT_CHUNK,
    commit: bool = True,
) -> BatchResult:
    """Evaluate ``predictor`` over a branch stream with the batch engine.

    With ``commit`` (the default) the predictor object afterwards holds
    exactly the state a scalar ``predict``/``update`` replay would leave:
    trained tables, advanced history, stats, pending delayed updates.
    """
    kernel_type = _kernel_for(predictor)
    if kernel_type is None:
        raise ConfigurationError(
            f"no batch kernel for predictor type {type(predictor).__name__}; "
            f"use the scalar engine"
        )
    if predictor._pending is not None:
        raise ProtocolError(
            f"{predictor.name}: batch evaluation with a scalar prediction in flight"
        )
    if chunk_branches < 1:
        raise ConfigurationError(f"chunk_branches must be >= 1, got {chunk_branches}")
    pcs = np.ascontiguousarray(pcs, dtype=np.int64)
    takens = np.ascontiguousarray(takens, dtype=bool)
    if pcs.shape != takens.shape:
        raise ConfigurationError("pcs and takens must have matching shapes")
    kernel = kernel_type(predictor)
    predictions = kernel.run(pcs, takens, chunk_branches)
    result = BatchResult(
        predictor=predictor.name, predictions=predictions, outcomes=takens
    )
    if commit:
        kernel.writeback(takens)
        predictor.stats.predictions += result.branches
        predictor.stats.mispredictions += result.mispredictions
    return result


def evaluate_trace(
    predictor: BranchPredictor,
    trace: Trace,
    chunk_branches: int = DEFAULT_CHUNK,
    commit: bool = True,
) -> BatchResult:
    """Evaluate ``predictor`` over a trace's conditional-branch stream."""
    pcs, takens = trace.branch_arrays()
    return evaluate_stream(predictor, pcs, takens, chunk_branches, commit)


def measure_accuracy_batch(
    predictor: BranchPredictor,
    trace: Trace,
    warmup_branches: int = 0,
    attribution: bool = False,
):
    """Batch twin of :func:`repro.harness.experiment.measure_accuracy`:
    same result object, same predictor side effects, array-speed.

    ``attribution`` buckets scored mispredictions per static PC from the
    prediction stream — identical to the scalar attribution path.
    """
    from repro.harness.experiment import AccuracyResult
    from repro.obs.attribution import attribution_from_arrays

    pcs, takens = trace.branch_arrays()
    result = evaluate_stream(predictor, pcs, takens)
    scored = max(result.branches - warmup_branches, 0)
    breakdown = None
    if attribution:
        scored_pcs = pcs[warmup_branches:] if scored else pcs[:0]
        wrong = (
            result.predictions[warmup_branches:] != result.outcomes[warmup_branches:]
            if scored
            else np.zeros(0, dtype=bool)
        )
        breakdown = attribution_from_arrays(predictor.name, trace.name, scored_pcs, wrong)
    return AccuracyResult(
        predictor=predictor.name,
        trace=trace.name,
        branches=scored,
        mispredictions=result.mispredictions_after(warmup_branches) if scored else 0,
        storage_bytes=predictor.storage_bytes,
        attribution=breakdown,
    )
