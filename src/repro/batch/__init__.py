"""Vectorized batch prediction engine.

Evaluates the table-based predictors (bimodal, gshare, the gshare.fast
functional model, Bi-Mode) over whole traces with NumPy array kernels
instead of the branch-at-a-time scalar protocol.  The engine is *bit-exact*
against the scalar reference — same per-branch prediction stream, same
final table state — which :mod:`repro.batch.diff` checks and
``tests/test_differential_batch.py`` enforces.

Entry points:

* :func:`repro.batch.engine.measure_accuracy_batch` — drop-in replacement
  for the scalar :func:`repro.harness.experiment.measure_accuracy`;
* :func:`repro.batch.engine.supports_batch` — which predictors have a
  batch kernel;
* :func:`repro.batch.diff.diff_engines` — the differential checker.
"""

from repro.batch.diff import DiffReport, diff_engines
from repro.batch.engine import (
    BatchResult,
    evaluate_stream,
    evaluate_trace,
    measure_accuracy_batch,
    supports_batch,
)

__all__ = [
    "BatchResult",
    "DiffReport",
    "diff_engines",
    "evaluate_stream",
    "evaluate_trace",
    "measure_accuracy_batch",
    "supports_batch",
]
