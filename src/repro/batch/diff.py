"""Differential testing of the batch engine against the scalar reference.

The scalar ``predict``/``update`` protocol is the specification; the batch
engine is an optimization.  :func:`diff_engines` drives both from identical
fresh predictors over the same branch stream and compares

* the **per-branch prediction stream** (every branch, not aggregates),
* the **final state** of every named counter table,
* the final **history register** value, and
* the running **stats** counters,

reporting the first diverging branch when they disagree.  This is the
machinery behind ``tests/test_differential_batch.py`` and is importable for
ad-hoc investigation of any future kernel.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.batch.engine import evaluate_stream
from repro.predictors.base import BranchPredictor


@dataclass
class DiffReport:
    """Outcome of one scalar-vs-batch comparison."""

    predictor: str
    branches: int
    first_divergence: int | None = None
    scalar_prediction: bool | None = None
    batch_prediction: bool | None = None
    table_mismatches: list[str] = field(default_factory=list)
    history_mismatch: str | None = None
    stats_mismatch: str | None = None

    @property
    def matches(self) -> bool:
        """True when streams and final state are bit-exact."""
        return (
            self.first_divergence is None
            and not self.table_mismatches
            and self.history_mismatch is None
            and self.stats_mismatch is None
        )

    def describe(self) -> str:
        """Human-readable mismatch summary (empty marker when exact)."""
        if self.matches:
            return f"{self.predictor}: bit-exact over {self.branches} branches"
        lines = [f"{self.predictor}: DIVERGED over {self.branches} branches"]
        if self.first_divergence is not None:
            lines.append(
                f"  first prediction mismatch at branch {self.first_divergence}: "
                f"scalar={self.scalar_prediction} batch={self.batch_prediction}"
            )
        lines.extend(f"  table {entry}" for entry in self.table_mismatches)
        if self.history_mismatch:
            lines.append(f"  history {self.history_mismatch}")
        if self.stats_mismatch:
            lines.append(f"  stats {self.stats_mismatch}")
        return "\n".join(lines)


def run_scalar(
    predictor: BranchPredictor, pcs: Sequence[int], takens: Sequence[bool]
) -> np.ndarray:
    """Reference replay: the scalar protocol, capturing every prediction."""
    predictions = np.empty(len(pcs), dtype=bool)
    for position, (pc, taken) in enumerate(zip(pcs, takens)):
        predictions[position] = predictor.predict(int(pc))
        predictor.update(int(pc), bool(taken))
    return predictions


def _state_snapshot(predictor: BranchPredictor) -> dict:
    tables = {name: table.snapshot() for name, table in predictor.tables().items()}
    history = getattr(predictor, "history", None)
    queue = getattr(predictor, "_deferred_updates", None)
    return {
        "tables": tables,
        "history": history.value if history is not None else None,
        "pending": queue.snapshot() if queue is not None else None,
        "stats": (predictor.stats.predictions, predictor.stats.mispredictions),
    }


def diff_engines(
    make_predictor: Callable[[], BranchPredictor],
    pcs: Sequence[int],
    takens: Sequence[bool],
    chunk_branches: int = 1 << 12,
) -> DiffReport:
    """Compare scalar and batch evaluation of identically-built predictors.

    ``make_predictor`` must build a fresh, deterministic instance per call;
    the stream is replayed once through each engine.
    """
    pcs = np.asarray(pcs, dtype=np.int64)
    takens = np.asarray(takens, dtype=bool)

    scalar = make_predictor()
    scalar_predictions = run_scalar(scalar, pcs, takens)
    scalar_state = _state_snapshot(scalar)

    batch = make_predictor()
    batch_result = evaluate_stream(batch, pcs, takens, chunk_branches=chunk_branches)
    batch_state = _state_snapshot(batch)

    report = DiffReport(predictor=scalar.name, branches=len(pcs))

    diverging = np.nonzero(scalar_predictions != batch_result.predictions)[0]
    if len(diverging):
        first = int(diverging[0])
        report.first_divergence = first
        report.scalar_prediction = bool(scalar_predictions[first])
        report.batch_prediction = bool(batch_result.predictions[first])

    for name, scalar_table in scalar_state["tables"].items():
        batch_table = batch_state["tables"][name]
        if not np.array_equal(scalar_table, batch_table):
            cells = np.nonzero(scalar_table != batch_table)[0]
            report.table_mismatches.append(
                f"{name!r}: {len(cells)} differing cells, first at {int(cells[0])} "
                f"(scalar={int(scalar_table[cells[0]])}, "
                f"batch={int(batch_table[cells[0]])})"
            )

    if scalar_state["history"] != batch_state["history"]:
        report.history_mismatch = (
            f"scalar={scalar_state['history']:#x} batch={batch_state['history']:#x}"
        )
    if scalar_state["pending"] != batch_state["pending"]:
        report.table_mismatches.append(
            f"pending updates: scalar={scalar_state['pending']} "
            f"batch={batch_state['pending']}"
        )
    if scalar_state["stats"] != batch_state["stats"]:
        report.stats_mismatch = (
            f"scalar={scalar_state['stats']} batch={batch_state['stats']}"
        )
    return report
