"""Array kernels underlying the batch prediction engine.

Three building blocks turn a branch-at-a-time predictor into chunked array
code:

* :func:`packed_history` — the global-history register value *before* every
  branch of a chunk, computed with ``length`` shifted-OR passes instead of a
  per-branch shift (the history a trace-driven predictor sees is a pure
  function of the preceding outcomes, which are all known up front);
* :func:`fold_bits` — the vectorized XOR-fold used by every PC hash;
* :class:`CounterScan` — an exact, loop-free replay of saturating-counter
  updates grouped by table cell.

The scan rests on a closure property: a saturating ±1 update is the map
``s -> clip(s + k, lo, hi)`` (increment: ``k=+1, hi=max``; decrement:
``k=-1, lo=0``), and the composition of two such maps is again one:

    (newer ∘ older)(s) = clip(s + k_o + k_n,
                              clip(lo_o + k_n, lo_n, hi_n),
                              clip(hi_o + k_n, lo_n, hi_n))

so the running counter state along each cell's update subsequence is a
segmented prefix-composition of ``(k, lo, hi)`` triples — computed with a
Hillis-Steele doubling scan in ``O(log chunk)`` vectorized passes, no
Python-level per-branch loop.  The unused bound of each primitive map is a
large sentinel, never ±inf, so everything stays in exact int64 arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.common.bits import mask
from repro.common.errors import ConfigurationError

#: Sentinel bounds for the unused side of a primitive clamp map.  Large
#: enough that no composition of |k| <= MAX_SCAN_EVENTS shifts reaches
#: them, small enough that int32 arithmetic can never overflow.
_NEG = -(1 << 28)
_POS = 1 << 28

#: Upper bound on events per scan, so sentinel arithmetic stays exact in
#: int32 (the scan's working dtype).
MAX_SCAN_EVENTS = 1 << 24

#: Cell ids and event times are packed into one sortable int64 key:
#: ``cell * _KEY_STRIDE + time``.  Event times are global branch positions,
#: so traces are limited to ``_KEY_STRIDE`` branches — far beyond anything
#: a pure-Python workload generator produces.
_KEY_STRIDE = 1 << 38


def packed_history(
    takens: np.ndarray, length: int, prefix: np.ndarray | None = None
) -> np.ndarray:
    """History-register value *before* each branch of ``takens``.

    Bit ``k-1`` of ``out[t]`` is the outcome of branch ``t - k`` — exactly
    :class:`repro.common.history.HistoryRegister` after pushing outcomes
    ``0..t-1``.  ``prefix`` supplies the outcomes that precede
    ``takens[0]`` (oldest first) when evaluating a later chunk; branches
    before the start of time count as not-taken, matching the register's
    all-zero reset state.
    """
    takens = np.asarray(takens)
    n = len(takens)
    out = np.zeros(n, dtype=np.int64)
    if length == 0 or n == 0:
        return out
    if prefix is None or len(prefix) == 0:
        ext = takens.astype(np.int64)
        p = 0
    else:
        prefix = np.asarray(prefix, dtype=np.int64)[-length:]
        ext = np.concatenate([prefix, takens.astype(np.int64)])
        p = len(prefix)
    for k in range(1, length + 1):
        first = max(0, k - p)
        if first >= n:
            break
        out[first:] |= ext[p + first - k : p + n - k] << (k - 1)
    return out


def pack_outcomes(takens: np.ndarray, length: int) -> int:
    """Final history-register value after pushing every outcome of
    ``takens`` (most recent outcome in bit 0)."""
    value = 0
    for taken in np.asarray(takens)[-length:] if length else ():
        value = ((value << 1) | int(taken)) & mask(length)
    return value


def fold_bits(values: np.ndarray, in_width: int, out_width: int) -> np.ndarray:
    """Vectorized :func:`repro.common.bits.fold` over an int64 array."""
    v = np.asarray(values, dtype=np.int64) & mask(in_width)
    out = np.zeros_like(v)
    if out_width <= 0:
        if out_width == 0:
            return out
        raise ConfigurationError(f"fold out_width must be >= 0, got {out_width}")
    m = mask(out_width)
    while np.any(v):
        out ^= v & m
        v >>= out_width
    return out


def hash_pcs(pcs: np.ndarray, width: int) -> np.ndarray:
    """Vectorized :func:`repro.common.bits.hash_pc`."""
    return fold_bits(np.asarray(pcs, dtype=np.int64) >> 2, 32, width)


class CounterScan:
    """Replay saturating-counter writes against a table, loop-free.

    ``cells``/``times``/``takens`` describe the write stream in issue
    order: branch at global position ``times[j]`` trains counter
    ``cells[j]`` toward ``takens[j]``.  The constructor runs the segmented
    prefix-composition scan; :meth:`sample` then reads the counter state
    any branch observed and :meth:`commit` writes final states back into
    the table array.
    """

    def __init__(
        self,
        cells: np.ndarray,
        times: np.ndarray | None,
        takens: np.ndarray,
        table: np.ndarray,
        max_value: int,
    ) -> None:
        cells = np.asarray(cells)
        takens = np.asarray(takens, dtype=bool)
        if len(cells) > MAX_SCAN_EVENTS:
            raise ConfigurationError(
                f"scan of {len(cells)} events exceeds MAX_SCAN_EVENTS; "
                f"use a smaller chunk"
            )
        if times is not None:
            times = np.asarray(times, dtype=np.int64)
            if len(times) and int(times.max()) >= _KEY_STRIDE:
                raise ConfigurationError("event time exceeds the key-packing stride")
        # Group by cell, preserving issue order within a cell.  A composite
        # unique key (cell, position) lets the default introsort do a
        # stable grouping at a fraction of kind="stable"'s cost.
        cells = cells.astype(np.int64)
        position = np.arange(len(cells), dtype=np.int64)
        self._order = np.argsort((cells << 24) | position)
        self._cells = cells[self._order].astype(np.int32)
        self._times = times[self._order] if times is not None else None
        self._table = table
        taken_sorted = takens[self._order]

        # Primitive maps: increment = clip(s+1, -inf, max), decrement =
        # clip(s-1, 0, +inf), with int32 sentinels for the unused bounds.
        shift = np.where(taken_sorted, np.int32(1), np.int32(-1))
        lo = np.where(taken_sorted, np.int32(_NEG), np.int32(0))
        hi = np.where(taken_sorted, np.int32(max_value), np.int32(_POS))

        n = len(shift)
        if n:
            boundary = np.empty(n, dtype=bool)
            boundary[0] = True
            np.not_equal(self._cells[1:], self._cells[:-1], out=boundary[1:])
            offset = 1
            while True:
                # Sorted order makes "same cell" equivalent to "same segment".
                idx = np.nonzero(self._cells[offset:] == self._cells[:-offset])[0]
                if len(idx) == 0:
                    break
                idx += offset
                src = idx - offset
                # newer (at idx) composed after older (at src)
                new_lo = np.minimum(np.maximum(lo[src] + shift[idx], lo[idx]), hi[idx])
                new_hi = np.minimum(np.maximum(hi[src] + shift[idx], lo[idx]), hi[idx])
                new_shift = shift[src] + shift[idx]
                shift[idx] = new_shift
                lo[idx] = new_lo
                hi[idx] = new_hi
                offset *= 2
            init = table[self._cells]
            # Inclusive prefix map applied to the cell's starting value =
            # counter state *after* each write; *before* is its shift-by-one
            # (the cell's starting value at each segment head).
            self._after = np.minimum(np.maximum(init + shift, lo), hi)
            before = np.empty(n, dtype=self._after.dtype)
            before[0] = init[0]
            before[1:] = self._after[:-1]
            before[boundary] = init[boundary]
            self._before = before
        else:
            self._after = np.zeros(0, dtype=np.int32)
            self._before = np.zeros(0, dtype=np.int32)

    def states_before_writes(self) -> np.ndarray:
        """Counter state each write observed, in original issue order.

        This is the predicted counter value when every branch reads and
        writes the same cell with no update delay — the common fast path
        that needs no searchsorted sampling.
        """
        out = np.empty(len(self._before), dtype=np.int64)
        out[self._order] = self._before
        return out

    def sample(self, cells: np.ndarray, times: np.ndarray, delay: int = 0) -> np.ndarray:
        """Counter state each read observes.

        A read at global position ``t`` on cell ``c`` sees every write to
        ``c`` issued at positions ``<= t - delay - 1`` — the scalar
        semantics of an (optionally delayed) predict-then-update stream.
        """
        cells = np.asarray(cells, dtype=np.int64)
        times = np.asarray(times, dtype=np.int64)
        if len(self._cells) == 0:
            return self._table[cells].astype(np.int64)
        if self._times is None:
            raise ConfigurationError("sampling requires event times at construction")
        keys = self._cells.astype(np.int64) * _KEY_STRIDE + self._times
        targets = cells * _KEY_STRIDE + (times - delay)
        pos = np.searchsorted(keys, targets, side="left")
        prev = np.clip(pos - 1, 0, len(keys) - 1)
        has_write = (pos > 0) & (self._cells[prev] == cells)
        return np.where(has_write, self._after[prev], self._table[cells].astype(np.int64))

    def commit(self, through_time: int | None = None) -> None:
        """Write back the state of every cell after its last write issued
        at position ``<= through_time`` (later writes stay pending).
        ``None`` commits every write."""
        n = len(self._cells)
        if n == 0:
            return
        is_last = np.empty(n, dtype=bool)
        if through_time is None:
            np.not_equal(self._cells[1:], self._cells[:-1], out=is_last[:-1])
            is_last[-1] = True
        else:
            if self._times is None:
                raise ConfigurationError(
                    "partial commit requires event times at construction"
                )
            committed = self._times <= through_time
            is_last[:-1] = (self._cells[1:] != self._cells[:-1]) | ~committed[1:]
            is_last[-1] = True
            is_last &= committed
        self._table[self._cells[is_last]] = self._after[is_last]
