#!/usr/bin/env python
"""CI gate: measured misprediction rates must match the closed-form oracles.

Runs the full oracle grid — every registered string-matching kernel x
{bimodal, gshare} x a pinned seed matrix — through ``measure_accuracy``
and gates each cell at the analytic tolerance (the 3-sigma concentration
policy of :mod:`repro.workloads.oracle`, DESIGN.md "oracle validation").
This is the one gate that checks the pipeline against external math
rather than against its own recorded output.

Two mandatory stages:

1. **clean grid** — every (kernel, family, seed) cell must land inside
   its analytic confidence interval;
2. **fault drill** — deliberately-biased traces (the profiles'
   ``fault_bias`` hook) must land *outside* the fault-free interval on
   the drill cells.  A gate that cannot trip is not a gate, so a drill
   miss fails CI exactly like a clean-grid miss.

``--report-out PATH`` writes every cell (measured, expected, deviation,
tolerance, sigma components, verdict) as JSON; CI uploads it as the
``oracle-report.json`` artifact.  Seeds are pinned so the whole check is
deterministic.

Usage::

    python scripts/oracle_check.py [--report-out oracle-report.json]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

#: Pinned experiment shape — keep in lockstep with tests/test_oracle_conformance.py.
BUDGET = 2048
BRANCHES = 60_000
WARMUP_FRACTION = 0.25
SEED_MATRIX = (7, 23)
FAULT_DRILL_CELLS = ("mp_aab_b7", "kmp_ab_u2")
FAULT_BIAS = 0.25


def run_cell(profile, family: str, seed: int, engine: str) -> dict:
    from repro.harness.experiment import measure_accuracy
    from repro.predictors import registry
    from repro.workloads.oracle import oracle_bound
    from repro.workloads.spec2000 import _generate_trace

    trace = _generate_trace(profile, BRANCHES * 6, seed)
    total = sum(1 for _ in trace.conditional_branches())
    warmup = int(total * WARMUP_FRACTION)
    scored = total - warmup
    bound = oracle_bound(profile, family, BUDGET)
    result = measure_accuracy(
        registry.build(family, BUDGET), trace, warmup_branches=warmup, engine=engine
    )
    deviation = abs(result.misprediction_rate - bound.rate)
    tolerance = bound.tolerance(scored)
    return {
        "workload": profile.name,
        "family": family,
        "engine": engine,
        "seed": seed,
        "fault_bias": profile.fault_bias,
        "scored_branches": scored,
        "measured_rate": result.misprediction_rate,
        "expected_rate": bound.rate,
        "deviation": deviation,
        "tolerance": tolerance,
        "sigma": bound.sigma,
        "model_slack": bound.model_slack,
        "within_bound": deviation <= tolerance,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report-out", default=None, help="write the per-cell JSON report here")
    parser.add_argument(
        "--engine", default="auto", choices=("auto", "scalar", "batch"),
        help="measurement engine for the clean grid (default auto)",
    )
    args = parser.parse_args()

    from repro.workloads.oracle import ORACLE_FAMILIES
    from repro.workloads.stringmatch import stringmatch_profiles

    started = time.time()
    cells: list[dict] = []
    failures: list[str] = []

    profiles = stringmatch_profiles()
    for name in sorted(profiles):
        for family in ORACLE_FAMILIES:
            for seed in SEED_MATRIX:
                cell = run_cell(profiles[name], family, seed, args.engine)
                cells.append(cell)
                verdict = "ok  " if cell["within_bound"] else "FAIL"
                print(
                    f"{verdict} {name:14s} {family:8s} seed={seed:<3d} "
                    f"measured={cell['measured_rate']:.4f} "
                    f"expected={cell['expected_rate']:.4f} "
                    f"dev={cell['deviation']:.4f} tol={cell['tolerance']:.4f}"
                )
                if not cell["within_bound"]:
                    failures.append(f"clean cell out of bound: {name}/{family}/seed={seed}")

    print("-- fault drill --")
    for name in FAULT_DRILL_CELLS:
        biased = dataclasses.replace(profiles[name], fault_bias=FAULT_BIAS)
        for family in ORACLE_FAMILIES:
            cell = run_cell(biased, family, SEED_MATRIX[0], "scalar")
            cell["drill"] = True
            cells.append(cell)
            verdict = "trip" if not cell["within_bound"] else "MISS"
            print(
                f"{verdict} {name:14s} {family:8s} bias={FAULT_BIAS} "
                f"dev={cell['deviation']:.4f} tol={cell['tolerance']:.4f}"
            )
            if cell["within_bound"]:
                failures.append(f"fault drill did not trip: {name}/{family}")

    report = {
        "budget_bytes": BUDGET,
        "branches": BRANCHES,
        "warmup_fraction": WARMUP_FRACTION,
        "seed_matrix": list(SEED_MATRIX),
        "fault_bias": FAULT_BIAS,
        "elapsed_seconds": round(time.time() - started, 2),
        "cells": cells,
        "failures": failures,
    }
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.report_out}")

    if failures:
        print("oracle check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    clean = sum(1 for cell in cells if not cell.get("drill"))
    print(f"oracle check passed: {clean} clean cells in bound, "
          f"{len(cells) - clean} fault cells tripped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
