"""End-to-end check of the parallel sweep executor, as CI runs it.

Drives the real ``repro-figures`` CLI four ways over one tiny figure:

1. serial baseline (``--jobs 1``);
2. parallel (``--jobs 2``) — output must be byte-identical to (1);
3. parallel with a forced mid-run crash (``REPRO_PARALLEL_ABORT_AFTER``),
   which must exit non-zero but leave shard checkpoints behind;
4. ``--resume`` of (3), which must skip the checkpointed shards and again
   produce byte-identical output.

Exit status 0 means every stage behaved; any mismatch or unexpected exit
code aborts with a diagnostic.  Pass ``--expect-speedup`` (CI does, on
multi-core runners) to additionally require the parallel run to beat the
serial run's wall time.

Usage::

    PYTHONPATH=src python scripts/parallel_resume_check.py [--expect-speedup]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small but not trivial: figure1 over two benchmarks at 5% scale is a
#: 72-shard grid that finishes in a few seconds per run.
CHECK_ENV = {
    "REPRO_SCALE": "0.05",
    "REPRO_BENCHMARKS": "gcc,eon",
}
TARGET = "figure1"
ABORT_AFTER = "3"


def run_cli(args: list[str], extra_env: dict[str, str] | None = None):
    """Run ``repro-figures`` with CHECK_ENV; returns CompletedProcess."""
    env = dict(os.environ, **CHECK_ENV)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.harness.cli", TARGET, *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


def fail(message: str, proc=None) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    if proc is not None:
        print(f"--- exit {proc.returncode} stderr ---\n{proc.stderr}", file=sys.stderr)
    raise SystemExit(1)


def read_output(directory: Path) -> str:
    return (directory / f"{TARGET}.txt").read_text()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--expect-speedup",
        action="store_true",
        help="require the --jobs 2 run to beat the serial wall time "
        "(only meaningful on multi-core machines)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="resume-check-") as tmp:
        tmp_path = Path(tmp)
        serial_dir, parallel_dir, resumed_dir = (
            tmp_path / "serial", tmp_path / "parallel", tmp_path / "resumed",
        )
        run_dir = tmp_path / "run"

        print(f"[1/4] serial {TARGET}")
        started = time.perf_counter()
        proc = run_cli(["--jobs", "1", "--output-dir", str(serial_dir)])
        serial_seconds = time.perf_counter() - started
        if proc.returncode != 0:
            fail("serial run failed", proc)

        print("[2/4] parallel --jobs 2")
        started = time.perf_counter()
        proc = run_cli(["--jobs", "2", "--output-dir", str(parallel_dir)])
        parallel_seconds = time.perf_counter() - started
        if proc.returncode != 0:
            fail("parallel run failed", proc)
        if read_output(parallel_dir) != read_output(serial_dir):
            fail("parallel output differs from serial output")
        print(
            f"      byte-identical ({serial_seconds:.1f}s serial, "
            f"{parallel_seconds:.1f}s parallel)"
        )

        print(f"[3/4] crash after {ABORT_AFTER} shards")
        proc = run_cli(
            ["--jobs", "2", "--run-dir", str(run_dir)],
            extra_env={"REPRO_PARALLEL_ABORT_AFTER": ABORT_AFTER},
        )
        if proc.returncode == 0:
            fail("crashed run unexpectedly exited 0")
        checkpoints = sorted((run_dir / "shards").glob("*.json"))
        if len(checkpoints) != int(ABORT_AFTER):
            fail(f"expected {ABORT_AFTER} checkpoints, found {len(checkpoints)}")
        manifest = json.loads((run_dir / "manifest.json").read_text())
        if manifest["status"] != "aborted":
            fail(f"expected manifest status 'aborted', got {manifest['status']!r}")
        mtimes = {p.name: p.stat().st_mtime_ns for p in checkpoints}

        print("[4/4] --resume the crashed run")
        proc = run_cli(
            ["--jobs", "2", "--resume", str(run_dir), "--output-dir", str(resumed_dir)]
        )
        if proc.returncode != 0:
            fail("resumed run failed", proc)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        if manifest["status"] != "completed":
            fail(f"expected manifest status 'completed', got {manifest['status']!r}")
        if manifest["shards"]["resumed"] != int(ABORT_AFTER):
            fail(f"expected {ABORT_AFTER} resumed shards, got {manifest['shards']}")
        for path in checkpoints:
            if path.stat().st_mtime_ns != mtimes[path.name]:
                fail(f"resume recomputed checkpointed shard {path.name}")
        if read_output(resumed_dir) != read_output(serial_dir):
            fail("resumed output differs from serial output")
        print(f"      resumed {manifest['shards']['resumed']}, "
              f"executed {manifest['shards']['executed']}")

        if args.expect_speedup and parallel_seconds >= serial_seconds:
            fail(
                f"--jobs 2 ({parallel_seconds:.1f}s) not faster than serial "
                f"({serial_seconds:.1f}s)"
            )

    print("OK: serial, parallel and crash+resume outputs are byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
