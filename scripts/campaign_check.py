"""End-to-end check of the campaign orchestrator, as CI runs it.

Drives the real ``repro-campaign`` CLI through the multi-process drills
the in-process tier-1 tests cannot cover:

1. serial reference: one worker drains a small campaign, ``merged.json``
   is the byte-identity baseline;
2. two concurrent workers (separate OS processes) share one fresh run
   directory — both must exit 0, the campaign's ``merged.json`` must be
   byte-identical to (1), and summing ``campaign.cells_executed`` across
   the two workers' event logs (via ``repro-stats campaign``) must equal
   the grid size exactly: the zero-duplication proof;
3. crash drill: a worker dies mid-campaign (``REPRO_CAMPAIGN_ABORT_AFTER``)
   holding a claim, then the run directory is synthetically damaged until
   one scan reports **all five classes** (completed / results-missing /
   failed / partial / missing), asserted via ``repro-campaign scan --json``;
4. recovery: ``rerun --status failed,partial,results`` with a tiny
   ``--stale-seconds`` steals the dead worker's claim, re-executes only the
   damaged classes (plus the still-queued missing cells), and the final
   merge is again byte-identical to (1).

Exit status 0 means every stage behaved; any mismatch aborts with a
diagnostic.  ``--report-out`` writes a JSON report (CI uploads it).

Usage::

    PYTHONPATH=src python scripts/campaign_check.py [--report-out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small but not trivial: 2 families x 2 budgets x 2 benchmarks = 8 cells,
#: a few seconds per full drain at 5% scale.
CHECK_ENV = {
    "REPRO_SCALE": "0.05",
    "REPRO_BENCHMARKS": "gcc,eon",
}
GRID_FLAGS = ["--kind", "accuracy", "--families", "gshare,bimodal", "--budgets", "2048,4096"]
GRID_CELLS = 8
ABORT_AFTER = 3


def run_cli(module: str, args: list[str], extra_env: dict[str, str] | None = None):
    env = dict(os.environ, **CHECK_ENV)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


def campaign_cli(args: list[str], extra_env: dict[str, str] | None = None):
    return run_cli("repro.harness.cli_campaign", args, extra_env)


def fail(message: str, proc=None) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    if proc is not None:
        print(f"--- exit {proc.returncode} ---", file=sys.stderr)
        print(f"--- stdout ---\n{proc.stdout}", file=sys.stderr)
        print(f"--- stderr ---\n{proc.stderr}", file=sys.stderr)
    raise SystemExit(1)


def scan_counts(run_dir: Path) -> dict:
    proc = campaign_cli(["scan", str(run_dir), "--json"])
    if proc.returncode != 0:
        fail(f"scan of {run_dir} failed", proc)
    return json.loads(proc.stdout)["counts"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="write the campaign drill report as JSON to FILE",
    )
    args = parser.parse_args(argv)
    report: dict = {"grid_cells": GRID_CELLS}

    with tempfile.TemporaryDirectory(prefix="campaign-check-") as tmp:
        tmp_path = Path(tmp)

        print("[1/4] serial reference campaign")
        ref_dir = tmp_path / "ref"
        proc = campaign_cli(["run", str(ref_dir), *GRID_FLAGS, "--owner", "ref", "--json"])
        if proc.returncode != 0:
            fail("serial reference campaign failed", proc)
        ref_result = json.loads(proc.stdout)
        if ref_result["worker"]["cells_executed"] != GRID_CELLS:
            fail(f"reference executed {ref_result['worker']} of {GRID_CELLS} cells")
        ref_merged = (ref_dir / "merged.json").read_bytes()
        report["serial"] = ref_result["worker"]

        print("[2/4] two concurrent workers, one shared run dir")
        shared_dir = tmp_path / "shared"
        logs = [tmp_path / "w1.jsonl", tmp_path / "w2.jsonl"]
        started = time.perf_counter()
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.harness.cli_campaign",
                    "run", str(shared_dir), *GRID_FLAGS,
                    "--owner", f"w{i + 1}", "--no-merge",
                ],
                cwd=REPO_ROOT,
                env=dict(
                    os.environ,
                    **CHECK_ENV,
                    PYTHONPATH=str(REPO_ROOT / "src"),
                    REPRO_LOG=str(log),
                ),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for i, log in enumerate(logs)
        ]
        for proc, log in zip(procs, logs):
            out, err = proc.communicate(timeout=600)
            if proc.returncode != 0:
                print(out, file=sys.stderr)
                fail(f"concurrent worker ({log.name}) exited {proc.returncode}: {err}")
        wall = time.perf_counter() - started

        counts = scan_counts(shared_dir)
        if counts["completed"] != GRID_CELLS:
            fail(f"shared campaign incomplete after both workers: {counts}")
        proc = campaign_cli(["rerun", str(shared_dir), "--status", "missing", "--json"])
        if proc.returncode != 0:
            fail("final merge of the shared campaign failed", proc)
        if (shared_dir / "merged.json").read_bytes() != ref_merged:
            fail("two-worker merged.json differs from the serial reference")

        # Zero-duplication proof, from the workers' own event logs.
        proc = run_cli(
            "repro.obs.cli", ["campaign", *(str(log) for log in logs), "--json"]
        )
        if proc.returncode != 0:
            fail("repro-stats campaign rollup failed", proc)
        rollup = json.loads(proc.stdout)
        executed = rollup["totals"]["cells_executed"]
        if executed != GRID_CELLS:
            fail(
                f"duplicated executions: workers executed {executed} cells "
                f"for a {GRID_CELLS}-cell grid (claims "
                f"{rollup['claim_events']}, steals {rollup['steal_events']})"
            )
        per_worker = {
            owner: worker["cells_executed"]
            for owner, worker in rollup["workers"].items()
        }
        print(
            f"      zero duplication: {per_worker} sums to {executed}/{GRID_CELLS} "
            f"({rollup['claim_events']} claims, {rollup['steal_events']} steals, "
            f"{wall:.1f}s)"
        )
        report["concurrent"] = {
            "per_worker": per_worker,
            "executed": executed,
            "claims": rollup["claim_events"],
            "steals": rollup["steal_events"],
            "wall_seconds": wall,
        }

        print(f"[3/4] crash drill + synthetic damage (abort after {ABORT_AFTER})")
        crash_dir = tmp_path / "crash"
        proc = campaign_cli(
            ["run", str(crash_dir), *GRID_FLAGS, "--owner", "victim", "--no-merge"],
            extra_env={"REPRO_CAMPAIGN_ABORT_AFTER": str(ABORT_AFTER)},
        )
        if proc.returncode == 0:
            fail("crashed campaign run unexpectedly exited 0")
        counts = scan_counts(crash_dir)
        if counts["completed"] != ABORT_AFTER or counts["partial"] != 1:
            fail(f"post-crash classification unexpected: {counts}")

        # Damage the run dir until one scan shows all five classes: corrupt
        # one completed checkpoint (-> partial), delete another while its
        # payload stays in the result store (-> results-missing needs a
        # store, so re-save it first), and exhaust one queued cell's retry
        # budget into a failure marker (-> failed).
        store_dir = tmp_path / "result-store"
        shard_dir = crash_dir / "shards"
        checkpoints = sorted(
            p for p in shard_dir.glob("*.json") if not p.name.endswith(".failed.json")
        )
        torn, regen = checkpoints[0], checkpoints[1]
        regen_shard = json.loads(regen.read_text())["shard"]
        torn.write_text('{"schema": 1, "payl')  # killed mid-write
        save_snippet = (
            "import json, sys\n"
            "from repro.harness.campaign import load_campaign\n"
            "from repro.harness.parallel import _shard_result_key\n"
            "from repro.harness.resultstore import active_result_store\n"
            "from repro.harness.campaign import shard_from_dict\n"
            f"spec = load_campaign({str(crash_dir)!r})\n"
            f"shard = shard_from_dict({json.dumps(regen_shard)})\n"
            "key, cell = _shard_result_key(shard, spec['cfg']['accuracy'])\n"
            f"payload = json.loads(open({str(regen)!r}).read())['payload']\n"
            "active_result_store().save(key, cell, payload)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", save_snippet],
            cwd=REPO_ROOT,
            env=dict(
                os.environ,
                **CHECK_ENV,
                PYTHONPATH=str(REPO_ROOT / "src"),
                REPRO_RESULT_STORE=str(store_dir),
            ),
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            fail(f"seeding the result store failed: {proc.stderr}")
        regen.unlink()  # checkpoint gone, result-store payload remains
        failing = json.loads(
            (crash_dir / "queue" / sorted(os.listdir(crash_dir / "queue"))[-1]).read_text()
        )["shard"]
        failing_key = "__".join(
            [failing["kind"], failing["benchmark"], failing["family"],
             str(failing["budget_bytes"])]
        )
        (shard_dir / f"{failing_key}.failed.json").write_text(
            json.dumps({"schema": 1, "shard": failing, "error": "injected"})
        )
        (crash_dir / "queue" / f"{failing_key}.json").unlink()

        proc = campaign_cli(
            ["scan", str(crash_dir), "--json"],
            extra_env={"REPRO_RESULT_STORE": str(store_dir)},
        )
        if proc.returncode != 0:
            fail("scan of the damaged run dir failed", proc)
        counts = json.loads(proc.stdout)["counts"]
        expected = {
            "completed": ABORT_AFTER - 2,   # one torn, one deleted
            "partial": 2,                   # torn checkpoint + held claim
            "failed": 1,
            "results_missing": 1,
            "missing": GRID_CELLS - ABORT_AFTER - 2,
        }
        if counts != expected:
            fail(f"five-class classification mismatch: {counts} != {expected}")
        print(f"      all five classes present: {counts}")
        report["damaged_scan"] = counts

        print("[4/4] selective rerun --status failed,partial,results")
        proc = campaign_cli(
            [
                "rerun", str(crash_dir),
                "--status", "failed,partial,results",
                "--owner", "medic",
                "--stale-seconds", "0.05",
                "--json",
            ],
            extra_env={"REPRO_RESULT_STORE": str(store_dir)},
        )
        if proc.returncode != 0:
            fail("selective rerun failed", proc)
        rerun_result = json.loads(proc.stdout)
        worker = rerun_result["worker"]
        if worker["steals"] != 1:
            fail(f"expected the medic to steal the victim's claim: {worker}")
        if worker["cells_regenerated"] != 1:
            fail(f"expected 1 store-regenerated cell: {worker}")
        counts = scan_counts(crash_dir)
        if counts["completed"] != GRID_CELLS:
            fail(f"campaign not fully recovered: {counts}")
        if (crash_dir / "merged.json").read_bytes() != ref_merged:
            fail("recovered merged.json differs from the serial reference")
        print(
            f"      recovered: {worker['cells_executed']} executed, "
            f"{worker['cells_regenerated']} regenerated, {worker['steals']} stolen; "
            f"merge byte-identical"
        )
        report["recovery"] = worker

    if args.report_out:
        Path(args.report_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"report -> {args.report_out}")
    print("OK: concurrent, crashed and damaged campaigns all reconverge "
          "byte-identically with zero duplicated executions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
