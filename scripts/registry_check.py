#!/usr/bin/env python
"""CI gate: the predictor-family registry must be complete.

Runs :func:`repro.predictors.registry.completeness_problems` and fails
(exit 1) if any concrete predictor dodges registration or any golden figure
family list references an unregistered family.  Prints the registered zoo
on success so CI logs show what the gate covered.

Usage::

    python scripts/registry_check.py
"""

from __future__ import annotations

import sys


def main() -> int:
    from repro.predictors import registry

    problems = registry.completeness_problems()
    if problems:
        print("registry completeness check FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    names = registry.family_names()
    print(f"registry complete: {len(names)} families registered")
    for spec in registry.specs():
        kernel = spec.batch_kernel or "-"
        print(f"  {spec.name:<16} {spec.module:<28} batch_kernel={kernel}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
