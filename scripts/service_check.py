"""End-to-end check of the prediction service daemon, as CI runs it.

Boots a real ``repro-serve`` subprocess on an ephemeral port and drives
the full client arc against it:

1. liveness: ``/healthz`` answers before any job exists;
2. submit -> long-poll -> fetch: a small sweep spec completes and its
   figure is **byte-identical** to what ``repro-figures --config`` renders
   from the same stores (the serving layer adds nothing and loses
   nothing);
3. cache-hit resubmission: the same spec answers 200/completed with zero
   additional predictor builds (via ``/metrics``);
4. reduced loadtest: ``scripts/service_loadtest.py`` hammers the cached
   figure digest and must clear a conservative floor (CI machines are
   noisy; the full 10k req/s claim is pinned by the gated benchmark
   ``benchmarks/test_service_throughput.py``), again with zero predictor
   builds during the load phase;
5. graceful drain: SIGTERM exits 0 and leaves no ``*.tmp.*`` staging
   droppings anywhere under the service state;
6. telemetry: the daemon's event log yields a ``repro-stats service``
   rollup whose request counts cover the traffic just sent.

Exit status 0 means every stage behaved; any mismatch aborts with a
diagnostic.  ``--report-out`` writes a JSON report (CI uploads it).

Usage::

    PYTHONPATH=src python scripts/service_check.py [--report-out FILE]
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

CHECK_ENV = {
    "REPRO_SCALE": "0.05",
    "REPRO_BENCHMARKS": "gcc,eon",
}

#: Conservative CI floor (req/s); the real 10k claim is the gated benchmark.
CI_FLOOR = 2_000

SPEC = {
    "schema": 1,
    "target": "service_check",
    "mode": "sweep",
    "title": "Service check sweep",
    "grids": [
        {
            "kind": "accuracy",
            "families": ["gshare", "bimodal"],
            "budgets": [2048, 4096],
            "benchmarks": ["gcc"],
        }
    ],
}


def fail(message: str, proc=None) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    if proc is not None:
        print(f"--- exit {proc.returncode} ---", file=sys.stderr)
        print(f"--- stdout ---\n{proc.stdout}", file=sys.stderr)
        print(f"--- stderr ---\n{proc.stderr}", file=sys.stderr)
    raise SystemExit(1)


def request(port: int, method: str, path: str, body: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(method, path, None if body is None else json.dumps(body))
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def request_json(port: int, method: str, path: str, body: dict | None = None):
    status, payload = request(port, method, path, body)
    return status, json.loads(payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report-out", default="", help="write a JSON report here")
    parser.add_argument(
        "--floor", type=float, default=CI_FLOOR, help="loadtest req/s floor"
    )
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="service_check"))
    data_dir = workdir / "svc"
    event_log = workdir / "events.jsonl"
    env = dict(os.environ, **CHECK_ENV)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_TRACE_STORE"] = str(workdir / "traces")
    env["REPRO_RESULT_STORE"] = str(workdir / "results")
    env["REPRO_LOG"] = str(event_log)
    report: dict = {"stages": {}}

    print("== stage 1: boot daemon ==")
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.daemon",
            "--data-dir",
            str(data_dir),
            "--port",
            "0",
            "--workers",
            "2",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = daemon.stdout.readline()
        if "listening on" not in line:
            daemon.kill()
            fail(f"daemon did not announce itself: {line!r}")
        port = int(line.rsplit(":", 1)[1].split()[0])
        status, health = request_json(port, "GET", "/healthz")
        if status != 200 or health.get("ok") is not True:
            fail(f"healthz answered {status}: {health}")
        report["stages"]["boot"] = {"port": port}
        print(f"   listening on port {port}")

        print("== stage 2: submit -> poll -> fetch ==")
        status, doc = request_json(port, "POST", "/v1/jobs", SPEC)
        if status != 202:
            fail(f"submit answered {status}: {doc}")
        job_id = doc["job_id"]
        deadline = time.time() + 300
        while True:
            status, doc = request_json(port, "GET", f"/v1/jobs/{job_id}?wait=10")
            if doc["state"] not in ("queued", "running"):
                break
            if time.time() > deadline:
                fail(f"job never settled: {doc}")
        if doc["state"] != "completed":
            fail(f"job settled as {doc['state']}: {doc}")
        status, served = request(port, "GET", f"/v1/jobs/{job_id}/figure")
        if status != 200:
            fail(f"figure fetch answered {status}")
        digest = doc["figure_digest"]
        status, via_digest = request(port, "GET", f"/v1/results/{digest}")
        if via_digest != served:
            fail("digest fetch differs from figure fetch")

        # Byte-identity vs the CLI on the same stores.
        config_path = workdir / "spec.json"
        config_path.write_text(json.dumps(SPEC))
        out_dir = workdir / "cli-out"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.harness.cli",
                "--config",
                str(config_path),
                "--output-dir",
                str(out_dir),
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            fail("repro-figures --config failed", proc)
        cli_bytes = (out_dir / "service_check.txt").read_bytes()
        if cli_bytes != served + b"\n":
            fail(
                f"served figure != repro-figures output "
                f"({len(served)} vs {len(cli_bytes)} bytes)"
            )
        report["stages"]["roundtrip"] = {
            "job_id": job_id,
            "figure_digest": digest,
            "byte_identical": True,
        }
        print(f"   job {job_id[:12]} completed; bytes match the CLI")

        print("== stage 3: cache-hit resubmission ==")
        _, before = request_json(port, "GET", "/metrics")
        status, doc = request_json(port, "POST", "/v1/jobs", SPEC)
        if status != 200 or doc["state"] != "completed":
            fail(f"resubmit was not a completed cache hit: {status} {doc}")
        _, after = request_json(port, "GET", "/metrics")
        delta = after["predictor_builds"] - before["predictor_builds"]
        if delta != 0:
            fail(f"cache-hit resubmission built {delta} predictors")
        report["stages"]["cache_hit"] = {"predictor_builds_delta": delta}
        print("   resubmit: 200 completed, zero builds")

        print("== stage 4: reduced loadtest ==")
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "service_loadtest.py"),
                "--port",
                str(port),
                "--path",
                f"/v1/results/{digest}",
                "--connections",
                "4",
                "--pipeline",
                "16",
                "--duration",
                "5",
                "--floor",
                str(args.floor),
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        if proc.returncode != 0:
            fail("loadtest below floor or errored", proc)
        load_report = json.loads(proc.stdout)
        _, final = request_json(port, "GET", "/metrics")
        load_delta = final["predictor_builds"] - after["predictor_builds"]
        if load_delta != 0:
            fail(f"load phase built {load_delta} predictors")
        report["stages"]["loadtest"] = load_report
        print(
            f"   {load_report['requests_per_second']:.0f} req/s "
            f"(p99 {load_report['p99_ms']:.2f}ms), zero builds"
        )

        print("== stage 5: graceful drain ==")
        daemon.send_signal(signal.SIGTERM)
        try:
            code = daemon.wait(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            fail("daemon did not exit within 60s of SIGTERM")
        if code != 0:
            fail(f"daemon exited {code} on SIGTERM\n{daemon.stderr.read()}")
        torn = [str(p) for p in data_dir.rglob("*") if ".tmp." in p.name]
        if torn:
            fail(f"torn staging files survived the drain: {torn}")
        report["stages"]["drain"] = {"exit_code": code, "torn_files": 0}
        print("   SIGTERM: exit 0, no torn files")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()

    print("== stage 6: telemetry rollup ==")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.cli", "service", str(event_log), "--json"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        fail("repro-stats service failed", proc)
    rollup = json.loads(proc.stdout)
    request_total = sum(
        entry["count"] for entry in rollup.get("requests", {}).values()
    )
    if rollup.get("starts", 0) < 1 or request_total < 3:
        fail(f"rollup missed the traffic: {rollup}")
    report["stages"]["telemetry"] = {
        "starts": rollup["starts"],
        "stops": rollup["stops"],
        "request_spans": request_total,
    }
    print(f"   {request_total} request spans rolled up")

    report["ok"] = True
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print("service check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
