"""End-to-end check of the distributed-tracing telemetry, as CI runs it.

Drives the real ``repro-figures --config`` path over a small accuracy grid
(2 families x 2 budgets x 2 benchmarks at 5% scale) with ``--jobs 2`` and
``REPRO_LOG`` pointed at a run-local event file:

1. parallel sweep with tracing on — the aggregated span tree must be
   *complete*: no orphan spans, no unclosed spans, every worker
   ``parallel.shard`` span parented to the parent run's ``parallel.run``
   span with a shared trace id, at least two worker PIDs, and all
   per-PID sidecar files merged back into the main log;
2. reporting surfaces — ``repro-stats timeline`` and ``critical-path``
   must render, and the aggregate's wall time must reproduce the root
   sweep span's duration within rounding;
3. ``repro-stats regress --counters-only`` against the committed baseline
   (``results/obs_baseline.json``) — the machine-independent gate: shard
   counts, retries and store totals must match exactly;
4. synthetic-slowdown drill — re-run the same grid with
   ``REPRO_PARALLEL_SLOW_SHARD`` injecting a straggler scaled to the
   measured baseline wall, and ``repro-stats regress`` against an in-job
   timing baseline **must** exit nonzero (the perf-regression gate
   actually gates) and name the straggler in the report;
5. store-health rollup — a cold-then-warm run against ``--result-store``
   must show the warm run's hits in ``repro-stats stores``.

Exit status 0 means every stage behaved.  ``--stats-out PATH`` writes the
full telemetry report of stage 1 plus per-stage facts (CI uploads it as
an artifact).  ``--write-baseline`` regenerates the committed baseline
from stage 1's counters instead of checking (run after changing the grid
or the counter schema).

Usage::

    PYTHONPATH=src python scripts/obs_check.py [--stats-out stats.json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "results" / "obs_baseline.json"

#: Small but parallel-shaped: 8 shards across 2 workers at 5% scale.
CHECK_ENV = {
    "REPRO_SCALE": "0.05",
    "REPRO_BENCHMARKS": "gcc,eon",
}
TARGET = "obs_check_sweep"
SWEEP_CONFIG = {
    "schema": 1,
    "target": TARGET,
    "mode": "sweep",
    "title": "obs-check: telemetry exercise grid",
    "grids": [
        {
            "kind": "accuracy",
            "families": ["gshare", "bimodal"],
            "budgets": [2048, 8192],
        }
    ],
}
SHARDS = 2 * 2 * 2  # families x budgets x benchmarks


def run_cli(module: str, args: list[str], extra_env: dict[str, str] | None = None):
    env = dict(os.environ, **CHECK_ENV)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_LOG", None)
    env.pop("REPRO_LOG_OWNER_PID", None)
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


def fail(message: str, proc=None) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    if proc is not None:
        print(f"--- exit {proc.returncode} stderr ---\n{proc.stderr}", file=sys.stderr)
    raise SystemExit(1)


def run_sweep(config_path: Path, log: Path, out_dir: Path, extra_env=None):
    proc = run_cli(
        "repro.harness.cli",
        ["--config", str(config_path), "--jobs", "2", "--output-dir", str(out_dir)],
        {"REPRO_LOG": str(log), **(extra_env or {})},
    )
    if proc.returncode != 0:
        fail("traced parallel sweep failed", proc)
    return proc


def aggregate_of(log: Path) -> dict:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs.aggregate import aggregate_run
    from repro.obs.events import read_run_events, validate_event

    events = read_run_events(log)
    bad = [p for e in events for p in validate_event(e)]
    if bad:
        fail(f"invalid events in {log}: {bad[:5]}")
    return aggregate_run(events)


def check_span_tree(log: Path) -> dict:
    """Stage 1 assertions: the cross-process span tree is complete."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs.aggregate import build_span_tree
    from repro.obs.events import read_run_events

    if list(log.parent.glob(f"{log.name}.*")):
        fail("worker sidecar files were not merged back into the main log")
    tree = build_span_tree(read_run_events(log))
    if tree.orphans:
        fail(f"orphan spans in trace: {[n.name for n in tree.orphans]}")
    if tree.unclosed:
        fail(f"unclosed spans in trace: {[r.get('name') for r in tree.unclosed]}")
    runs = [n for n in tree.by_id.values() if n.name == "parallel.run"]
    if len(runs) != 1:
        fail(f"expected exactly one parallel.run span, found {len(runs)}")
    run = runs[0]
    shards = [n for n in tree.by_id.values() if n.name == "parallel.shard"]
    if len(shards) != SHARDS:
        fail(f"expected {SHARDS} worker shard spans, found {len(shards)}")
    stray = [n.span_id for n in shards if n.parent_id != run.span_id]
    if stray:
        fail(f"{len(stray)} worker spans not parented to the run span")
    off_trace = [n.span_id for n in shards if n.trace_id != run.trace_id]
    if off_trace:
        fail(f"{len(off_trace)} worker spans on a foreign trace id")
    worker_pids = {n.pid for n in shards}
    if run.pid in worker_pids or len(worker_pids) < 2:
        fail(f"expected >=2 distinct worker PIDs, saw {sorted(worker_pids)}")
    return {
        "spans": len(tree.by_id),
        "worker_pids": sorted(worker_pids),
        "run_wall_seconds": run.duration,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stats-out", default=None, metavar="PATH")
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"regenerate {BASELINE.relative_to(REPO_ROOT)} instead of checking",
    )
    args = parser.parse_args(argv)
    stats: dict[str, object] = {}

    with tempfile.TemporaryDirectory(prefix="obs-check-") as tmp:
        tmp_path = Path(tmp)
        config_path = tmp_path / f"{TARGET}.json"
        config_path.write_text(json.dumps(SWEEP_CONFIG, indent=2))
        log = tmp_path / "events.jsonl"

        print(f"[1/5] parallel sweep ({SHARDS} shards, --jobs 2) with REPRO_LOG")
        run_sweep(config_path, log, tmp_path / "out")
        stats["tree"] = check_span_tree(log)
        agg = aggregate_of(log)
        stats["aggregate"] = agg
        print(
            f"      complete tree: {stats['tree']['spans']} spans, "
            f"workers {stats['tree']['worker_pids']}, no orphans"
        )

        print("[2/5] timeline / critical-path reproduce the run's wall time")
        for sub in ("timeline", "flame", "critical-path", "stores"):
            proc = run_cli("repro.obs.cli", [sub, str(log)])
            if proc.returncode != 0:
                fail(f"repro-stats {sub} failed", proc)
        run_wall = stats["tree"]["run_wall_seconds"]
        root_total = sum(r["duration_seconds"] for r in agg["roots"])
        if not (run_wall <= agg["wall_seconds"] <= root_total * 1.05):
            fail(
                f"aggregate wall {agg['wall_seconds']:.3f}s does not bracket the "
                f"run span ({run_wall:.3f}s) under the root spans ({root_total:.3f}s)"
            )
        sweep_total = agg["phases"]["accuracy_sweep"]["total_seconds"]
        if not (run_wall <= sweep_total <= agg["wall_seconds"] * 1.05):
            fail(
                f"accuracy_sweep phase total {sweep_total:.3f}s inconsistent with "
                f"run span {run_wall:.3f}s / wall {agg['wall_seconds']:.3f}s"
            )
        path_names = [step["name"] for step in agg["critical_path"]]
        # The figures CLI adds a target-level root span above the sweep.
        if path_names[-3:] != ["accuracy_sweep", "parallel.run", "parallel.shard"]:
            fail(f"critical path has unexpected shape: {path_names}")
        print(f"      wall {agg['wall_seconds']:.3f}s, critical path {path_names}")

        if args.write_baseline:
            sys.path.insert(0, str(REPO_ROOT / "src"))
            from repro.obs.aggregate import baseline_snapshot

            snapshot = baseline_snapshot(agg)
            # Committed baseline gates counters only; zero the machine-local
            # timings so nobody mistakes them for comparable numbers.
            snapshot["wall_seconds"] = 0.0
            snapshot["phases"] = {}
            BASELINE.parent.mkdir(parents=True, exist_ok=True)
            BASELINE.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
            print(f"baseline written: {BASELINE}")
            return 0

        print("[3/5] regress --counters-only against the committed baseline")
        proc = run_cli(
            "repro.obs.cli",
            ["regress", str(log), "--baseline", str(BASELINE), "--counters-only"],
        )
        if proc.returncode != 0:
            fail("counters drifted from the committed baseline", proc)
        print("      counters match the committed baseline")

        print("[4/5] synthetic slowdown must trip the regress gate")
        timing_baseline = tmp_path / "timing_baseline.json"
        proc = run_cli(
            "repro.obs.cli",
            ["regress", str(log), "--baseline", str(timing_baseline), "--write-baseline"],
        )
        if proc.returncode != 0:
            fail("writing the in-job timing baseline failed", proc)
        # Scale the injected stall to the measured run so the gate trips on
        # any machine: +150% of baseline wall, well past the 25% threshold.
        slow_seconds = max(2.0, 1.5 * agg["wall_seconds"])
        slow_log = tmp_path / "slow_events.jsonl"
        run_sweep(
            config_path,
            slow_log,
            tmp_path / "slow_out",
            {
                "REPRO_PARALLEL_SLOW_SHARD": "eon__bimodal__8192",
                "REPRO_PARALLEL_SLOW_SHARD_SECONDS": f"{slow_seconds:.1f}",
            },
        )
        proc = run_cli(
            "repro.obs.cli",
            ["regress", str(slow_log), "--baseline", str(timing_baseline), "--json"],
        )
        if proc.returncode == 0:
            fail(f"regress failed to flag a {slow_seconds:.1f}s injected straggler", proc)
        verdict = json.loads(proc.stdout)
        kinds = {v["kind"] for v in verdict["violations"]}
        if "wall" not in kinds:
            fail(f"slowdown verdict missing the wall violation: {verdict}")
        stats["slowdown"] = verdict
        slow_agg = aggregate_of(slow_log)
        slowest = slow_agg["stragglers"]["slowest"][0]
        if "eon__bimodal__8192" not in str(slowest.get("shard")):
            fail(f"straggler report names the wrong shard: {slowest}")
        print(
            f"      gate tripped ({sorted(kinds)}); straggler correctly "
            f"identified as {slowest['shard']}"
        )

        print("[5/5] store-health rollup sees warm result-store hits")
        store_dir = tmp_path / "store"
        store_log = tmp_path / "store_events.jsonl"
        run_sweep(
            config_path, tmp_path / "cold_store_out", tmp_path / "cold_out",
            {"REPRO_RESULT_STORE": str(store_dir)},
        )
        run_sweep(
            config_path, store_log, tmp_path / "warm_out",
            {"REPRO_RESULT_STORE": str(store_dir)},
        )
        warm_agg = aggregate_of(store_log)
        result_stats = warm_agg["stores"].get("result") or {}
        if result_stats.get("hits", 0) != SHARDS:
            fail(f"warm run should hit all {SHARDS} cells: {result_stats}")
        if warm_agg["counters"].get("result_store.hits") != SHARDS:
            fail(f"run summary disagrees with store events: {warm_agg['counters']}")
        stats["warm_store"] = result_stats
        print(f"      warm hits {result_stats['hits']}/{SHARDS}, rollup consistent")

    if args.stats_out:
        with open(args.stats_out, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        print(f"telemetry report written to {args.stats_out}")

    print("OK: complete trace, reports render, both regress gates behave")
    return 0


if __name__ == "__main__":
    sys.exit(main())
