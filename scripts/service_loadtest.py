#!/usr/bin/env python
"""Asyncio load generator for the prediction service.

Hammers one endpoint (by default a content-addressed ``/v1/results/<digest>``
fetch — the cache-hit fast path) over N keep-alive connections with
pipelined requests, and reports throughput plus latency percentiles::

    PYTHONPATH=src python scripts/service_loadtest.py \
        --host 127.0.0.1 --port 8321 --path /v1/results/<digest> \
        --connections 4 --pipeline 16 --duration 5 --floor 10000

``--floor`` turns the run into a gate: exit status 2 when requests/sec
lands below it.  ``--report-out`` writes the JSON report for CI upload.
Latency is measured per pipelined batch from write to each response's
arrival, so percentiles reflect what a real pipelining client observes.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

HEAD_END = b"\r\n\r\n"


async def _read_response(reader: asyncio.StreamReader) -> int:
    head = await reader.readuntil(HEAD_END)
    status = int(head.split(b" ", 2)[1])
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
            break
    if length:
        await reader.readexactly(length)
    return status


async def _client(
    host: str,
    port: int,
    path: str,
    deadline: float,
    pipeline: int,
    latencies: list[float],
    errors: list[int],
) -> int:
    reader, writer = await asyncio.open_connection(host, port)
    request = (
        f"GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: keep-alive\r\n\r\n"
    ).encode()
    batch = request * pipeline
    served = 0
    try:
        while time.perf_counter() < deadline:
            started = time.perf_counter()
            writer.write(batch)
            await writer.drain()
            for _ in range(pipeline):
                status = await _read_response(reader)
                latencies.append(time.perf_counter() - started)
                if status != 200:
                    errors.append(status)
                served += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return served


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


async def run_load(
    host: str, port: int, path: str, connections: int, pipeline: int, duration: float
) -> dict:
    """Drive the endpoint for ``duration`` seconds; returns the report."""
    latencies: list[float] = []
    errors: list[int] = []
    started = time.perf_counter()
    deadline = started + duration
    totals = await asyncio.gather(
        *(
            _client(host, port, path, deadline, pipeline, latencies, errors)
            for _ in range(connections)
        )
    )
    elapsed = time.perf_counter() - started
    requests = sum(totals)
    latencies.sort()
    return {
        "path": path,
        "connections": connections,
        "pipeline": pipeline,
        "requests": requests,
        "seconds": elapsed,
        "requests_per_second": requests / elapsed if elapsed else 0.0,
        "errors": len(errors),
        "p50_ms": 1000 * _percentile(latencies, 0.50),
        "p95_ms": 1000 * _percentile(latencies, 0.95),
        "p99_ms": 1000 * _percentile(latencies, 0.99),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--path",
        required=True,
        help="endpoint to hammer, e.g. /v1/results/<digest> or /healthz",
    )
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--pipeline", type=int, default=16)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument(
        "--floor",
        type=float,
        default=0.0,
        help="minimum requests/sec; below it the run exits 2",
    )
    parser.add_argument("--report-out", default="", help="write the JSON report here")
    args = parser.parse_args(argv)

    report = asyncio.run(
        run_load(
            args.host, args.port, args.path, args.connections, args.pipeline,
            args.duration,
        )
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if report["errors"]:
        print(f"FAIL: {report['errors']} non-200 responses", file=sys.stderr)
        return 1
    if args.floor and report["requests_per_second"] < args.floor:
        print(
            f"FAIL: {report['requests_per_second']:.0f} req/s below the "
            f"{args.floor:.0f} req/s floor",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
