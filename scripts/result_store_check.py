"""End-to-end check of the content-addressed sweep-result store, as CI runs it.

Drives the real ``repro-figures --config`` path over the full Figure 1
grid (two benchmarks at 5% scale):

1. baseline ``figure1`` with no stores;
2. cold run with ``--result-store`` over the declarative configs
   (``configs/figure1.json`` + the inferred projection) — byte-identical
   to (1) while the store fills, one entry per grid cell;
3. ``--dry-run`` classification — every declared cell reports as a hit;
4. warm run (``--profile``) — byte-identical again, with obs counters
   proving **zero** ``ProgramExecutor`` invocations, **zero** predictor
   builds, and **zero** accuracy measurements: the whole grid is served
   from the store;
5. corruption drill: truncate one entry, tamper with another's payload,
   and plant a stale ``*.tmp.<pid>`` staging file — the next run must
   still exit 0 with byte-identical output, counting
   ``result_store.corrupt`` and recomputing exactly the damaged cells;
6. inferred-table-only regeneration: a fresh inferred config projecting
   the 64K column is assembled *purely* from stored results — zero
   executor/build/measurement work on its own per-target manifest.

Exit status 0 means every stage behaved.  ``--stats-out PATH`` writes a
JSON summary of the store counters per stage (CI uploads it as an
artifact alongside the trace-store one).

Usage::

    PYTHONPATH=src python scripts/result_store_check.py [--stats-out stats.json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIGS = REPO_ROOT / "configs"

#: Small but not trivial: figure1 over two benchmarks at 5% scale.
CHECK_ENV = {
    "REPRO_SCALE": "0.05",
    "REPRO_BENCHMARKS": "gcc,eon",
}
TARGET = "figure1"
INFERRED = "figure1_inferred"
#: Cells in the full Figure 1 grid under CHECK_ENV: 4 families x 9 budgets
#: x 2 benchmarks.
GRID_CELLS = 4 * 9 * 2

#: A warm run must report zero for each of these (no trace generation, no
#: predictor construction, no prediction work of any kind).
ZERO_WORK_COUNTERS = (
    "workloads.executor_runs",
    "predictors.builds",
    "accuracy.measurements",
)


def run_cli(args: list[str], extra_env: dict[str, str] | None = None):
    """Run ``repro-figures`` with CHECK_ENV; returns CompletedProcess."""
    env = dict(os.environ, **CHECK_ENV)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.harness.cli", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


def fail(message: str, proc=None) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    if proc is not None:
        print(f"--- exit {proc.returncode} stderr ---\n{proc.stderr}", file=sys.stderr)
    raise SystemExit(1)


def read_output(directory: Path, target: str = TARGET) -> str:
    return (directory / f"{target}.txt").read_text()


def counters_of(directory: Path, target: str = TARGET) -> dict:
    manifest = json.loads((directory / f"{target}.manifest.json").read_text())
    return manifest["metrics"]["counters"]


def assert_zero_work(counters: dict, stage: str) -> None:
    for name in ZERO_WORK_COUNTERS:
        if counters.get(name, 0) != 0:
            fail(f"{stage}: expected zero work but {name}={counters[name]}")


def store_stats_slice(counters: dict) -> dict:
    return {k: v for k, v in counters.items() if "result_store" in k}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--stats-out",
        default=None,
        metavar="PATH",
        help="write a JSON summary of per-stage store statistics to PATH",
    )
    args = parser.parse_args(argv)
    stats: dict[str, dict] = {}

    config_args = [
        "--config", str(CONFIGS / "figure1.json"),
        "--config", str(CONFIGS / "figure1_inferred.json"),
    ]

    with tempfile.TemporaryDirectory(prefix="result-store-check-") as tmp:
        tmp_path = Path(tmp)
        store_dir = tmp_path / "store"
        baseline_dir, cold_dir, warm_dir, repaired_dir, inferred_dir = (
            tmp_path / "baseline", tmp_path / "cold", tmp_path / "warm",
            tmp_path / "repaired", tmp_path / "inferred",
        )
        store_args = ["--result-store", str(store_dir)]

        print(f"[1/6] baseline {TARGET} (no stores)")
        started = time.perf_counter()
        proc = run_cli([TARGET, "--jobs", "1", "--output-dir", str(baseline_dir)])
        baseline_seconds = time.perf_counter() - started
        if proc.returncode != 0:
            fail("baseline run failed", proc)
        baseline = read_output(baseline_dir)

        print("[2/6] cold run with --result-store over the declarative configs")
        proc = run_cli(
            [*config_args, *store_args, "--jobs", "1", "--output-dir", str(cold_dir)]
        )
        if proc.returncode != 0:
            fail("cold store run failed", proc)
        if read_output(cold_dir) != baseline:
            fail("cold config output differs from legacy baseline")
        if read_output(cold_dir, INFERRED) != baseline:
            fail("inferred projection differs from legacy baseline")
        entries = sorted(store_dir.glob("*.json"))
        if len(entries) != GRID_CELLS:
            fail(f"expected {GRID_CELLS} store entries, found {len(entries)}")

        print("[3/6] --dry-run classification: every cell a hit")
        proc = run_cli([*config_args, *store_args, "--dry-run"])
        if proc.returncode != 0:
            fail("dry run failed", proc)
        # Classification-table columns: target mode cells completed
        # results failed partial missing inferred based-on.  A pure-store
        # hit classifies as completed; everything else must be zero.
        rows = {}
        for line in proc.stdout.splitlines():
            parts = line.split()
            if len(parts) >= 10 and parts[1] in ("runner", "sweep", "inferred"):
                rows[parts[0]] = tuple(int(p) for p in parts[2:8])
        for target in (TARGET, INFERRED):
            if rows.get(target) != (GRID_CELLS, GRID_CELLS, 0, 0, 0, 0):
                fail(
                    f"dry run misclassified {target}: {rows.get(target)} "
                    f"(expected ({GRID_CELLS}, {GRID_CELLS}, 0, 0, 0, 0))\n{proc.stdout}"
                )

        print("[4/6] warm run: byte-identical, zero predictor work")
        started = time.perf_counter()
        proc = run_cli(
            [*config_args, *store_args, "--jobs", "1",
             "--output-dir", str(warm_dir), "--profile"]
        )
        warm_seconds = time.perf_counter() - started
        if proc.returncode != 0:
            fail("warm store run failed", proc)
        if read_output(warm_dir) != baseline:
            fail("warm config output differs from baseline")
        if read_output(warm_dir, INFERRED) != baseline:
            fail("warm inferred output differs from baseline")
        for target in (TARGET, INFERRED):
            counters = counters_of(warm_dir, target)
            stats[f"warm.{target}"] = store_stats_slice(counters)
            assert_zero_work(counters, f"warm {target}")
            if counters.get("result_store.hits", 0) != GRID_CELLS:
                fail(f"warm {target} did not hit every cell: {counters}")
            if counters.get("result_store.misses", 0) != 0:
                fail(f"warm {target} missed the store: {counters}")
        print(
            f"      byte-identical, zero executor runs / builds / measurements "
            f"({baseline_seconds:.1f}s cold, {warm_seconds:.1f}s warm)"
        )

        print("[5/6] corruption drill: truncate + payload tamper + stale tmp")
        first, second = entries[0], entries[1]
        data = first.read_bytes()
        first.write_bytes(data[: len(data) // 2])  # truncation
        entry = json.loads(second.read_text())  # tampered floats, old checksum
        entry["payload"]["misprediction_percent"] = 0.0
        second.write_text(json.dumps(entry, indent=2, sort_keys=True))
        (store_dir / f"{first.name}.tmp.4242").write_bytes(b"\x00" * 64)
        proc = run_cli(
            [TARGET, *store_args, "--jobs", "1",
             "--output-dir", str(repaired_dir), "--profile"]
        )
        if proc.returncode != 0:
            fail("run over corrupted store crashed", proc)
        if read_output(repaired_dir) != baseline:
            fail("corrupted store changed results")
        counters = counters_of(repaired_dir)
        stats["repaired"] = store_stats_slice(counters)
        if counters.get("result_store.corrupt", 0) != 2:
            fail(f"expected 2 corrupt entries counted, got {counters}")
        if counters.get("predictors.builds", 0) != 2:
            fail(f"expected exactly 2 recomputed cells, got {counters}")
        if counters.get("result_store.writes", 0) != 2:
            fail(f"expected 2 rewrites, got {counters}")
        print(
            f"      recomputed {counters['result_store.corrupt']} corrupt "
            f"entries, results unchanged"
        )

        print("[6/6] inferred-table-only regeneration from stored results")
        projection = {
            "schema": 1,
            "target": "table_mid64",
            "mode": "inferred",
            "title": "Inferred: 64K column of the Figure 1 grid",
            "based_on": [TARGET],
            "grids": [
                {
                    "kind": "accuracy",
                    "families": ["gshare", "bimode", "multicomponent", "perceptron"],
                    "budgets": [65536],
                }
            ],
        }
        projection_path = tmp_path / "table_mid64.json"
        projection_path.write_text(json.dumps(projection, indent=2))
        proc = run_cli(
            ["--config", str(CONFIGS / "figure1.json"),
             "--config", str(projection_path), *store_args,
             "--output-dir", str(inferred_dir), "--profile"]
        )
        if proc.returncode != 0:
            fail("inferred regeneration failed", proc)
        counters = counters_of(inferred_dir, "table_mid64")
        stats["inferred.table_mid64"] = store_stats_slice(counters)
        assert_zero_work(counters, "inferred table")
        if counters.get("result_store.hits", 0) != 4 * 2:  # families x benchmarks
            fail(f"inferred table not assembled purely from the store: {counters}")
        table = read_output(inferred_dir, "table_mid64")
        if "64K" not in table or "perceptron" not in table:
            fail(f"inferred table looks wrong:\n{table}")
        print("      assembled from stored results only (zero predictor work)")

    if args.stats_out:
        with open(args.stats_out, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"store statistics written to {args.stats_out}")

    print("OK: cold, warm, corrupted and inferred outputs all check out")
    return 0


if __name__ == "__main__":
    sys.exit(main())
