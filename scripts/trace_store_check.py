"""End-to-end check of the content-addressed trace store, as CI runs it.

Drives the real ``repro-figures`` CLI over one tiny figure grid:

1. baseline without a store (``--jobs 1``);
2. cold run with ``--trace-store`` — output must be byte-identical to (1)
   while the store fills;
3. ``--warm-traces`` prewarm — reports every entry already present;
4. warm run (``--profile``) — byte-identical again, with obs counters
   proving **zero** ``ProgramExecutor`` invocations and only store hits;
5. corruption drill: truncate one store entry, flip bytes in another, and
   plant a half-written ``*.tmp.<pid>`` staging file — the next run must
   still exit 0 with byte-identical output, counting ``trace_store.corrupt``
   and regenerating the damaged entries.

Exit status 0 means every stage behaved.  ``--stats-out PATH`` writes a
JSON summary of the store counters per stage (CI uploads it as an
artifact).

Usage::

    PYTHONPATH=src python scripts/trace_store_check.py [--stats-out stats.json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small but not trivial: figure1 over two benchmarks at 5% scale.
CHECK_ENV = {
    "REPRO_SCALE": "0.05",
    "REPRO_BENCHMARKS": "gcc,eon",
}
TARGET = "figure1"


def run_cli(args: list[str], extra_env: dict[str, str] | None = None):
    """Run ``repro-figures`` with CHECK_ENV; returns CompletedProcess."""
    env = dict(os.environ, **CHECK_ENV)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.harness.cli", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


def fail(message: str, proc=None) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    if proc is not None:
        print(f"--- exit {proc.returncode} stderr ---\n{proc.stderr}", file=sys.stderr)
    raise SystemExit(1)


def read_output(directory: Path) -> str:
    return (directory / f"{TARGET}.txt").read_text()


def counters_of(directory: Path) -> dict:
    manifest = json.loads((directory / f"{TARGET}.manifest.json").read_text())
    return manifest["metrics"]["counters"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--stats-out",
        default=None,
        metavar="PATH",
        help="write a JSON summary of per-stage store statistics to PATH",
    )
    args = parser.parse_args(argv)
    stats: dict[str, dict] = {}

    with tempfile.TemporaryDirectory(prefix="trace-store-check-") as tmp:
        tmp_path = Path(tmp)
        store_dir = tmp_path / "store"
        baseline_dir, cold_dir, warm_dir, repaired_dir = (
            tmp_path / "baseline", tmp_path / "cold",
            tmp_path / "warm", tmp_path / "repaired",
        )

        print(f"[1/5] baseline {TARGET} (no store)")
        started = time.perf_counter()
        proc = run_cli([TARGET, "--jobs", "1", "--output-dir", str(baseline_dir)])
        baseline_seconds = time.perf_counter() - started
        if proc.returncode != 0:
            fail("baseline run failed", proc)

        print("[2/5] cold run with --trace-store")
        proc = run_cli(
            [TARGET, "--jobs", "1", "--trace-store", str(store_dir),
             "--output-dir", str(cold_dir)]
        )
        if proc.returncode != 0:
            fail("cold store run failed", proc)
        if read_output(cold_dir) != read_output(baseline_dir):
            fail("cold store output differs from storeless baseline")
        entries = sorted(store_dir.glob("*.npz"))
        if len(entries) != 2:  # one per benchmark
            fail(f"expected 2 store entries, found {len(entries)}")

        print("[3/5] --warm-traces prewarm, twice (second pass is a no-op)")
        # The first prewarm may top up grid lengths figure1 does not use
        # (the IPC trace length); the second must find everything present.
        proc = run_cli(["--trace-store", str(store_dir), "--warm-traces"])
        if proc.returncode != 0:
            fail("prewarm failed", proc)
        proc = run_cli(["--trace-store", str(store_dir), "--warm-traces"])
        if proc.returncode != 0:
            fail("second prewarm failed", proc)
        if "0 generated" not in proc.stdout:
            fail(f"second prewarm regenerated entries: {proc.stdout!r}")

        print("[4/5] warm run: byte-identical, zero generation")
        started = time.perf_counter()
        proc = run_cli(
            [TARGET, "--jobs", "1", "--trace-store", str(store_dir),
             "--output-dir", str(warm_dir), "--profile"]
        )
        warm_seconds = time.perf_counter() - started
        if proc.returncode != 0:
            fail("warm store run failed", proc)
        if read_output(warm_dir) != read_output(baseline_dir):
            fail("warm store output differs from baseline")
        counters = counters_of(warm_dir)
        stats["warm"] = {k: v for k, v in counters.items() if "trace_store" in k}
        if counters.get("workloads.executor_runs", 0) != 0:
            fail(
                f"warm run generated traces: workloads.executor_runs="
                f"{counters['workloads.executor_runs']}"
            )
        if counters.get("trace_store.hits", 0) < 2:
            fail(f"warm run did not hit the store: {counters}")
        print(
            f"      byte-identical, zero executor runs "
            f"({baseline_seconds:.1f}s cold, {warm_seconds:.1f}s warm)"
        )

        print("[5/5] corruption drill: truncate + bit-flip + stale tmp")
        first, second = entries
        data = first.read_bytes()
        first.write_bytes(data[: len(data) // 2])  # truncation
        blob = bytearray(second.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # bit flip
        second.write_bytes(bytes(blob))
        (store_dir / f"{first.name}.tmp.4242").write_bytes(b"\x00" * 64)
        proc = run_cli(
            [TARGET, "--jobs", "1", "--trace-store", str(store_dir),
             "--output-dir", str(repaired_dir), "--profile"]
        )
        if proc.returncode != 0:
            fail("run over corrupted store crashed", proc)
        if read_output(repaired_dir) != read_output(baseline_dir):
            fail("corrupted store changed results")
        counters = counters_of(repaired_dir)
        stats["repaired"] = {k: v for k, v in counters.items() if "trace_store" in k}
        if counters.get("trace_store.corrupt", 0) != 2:
            fail(f"expected 2 corrupt entries counted, got {counters}")
        if counters.get("workloads.executor_runs", 0) != 2:
            fail(f"expected 2 regenerations, got {counters}")
        print(
            f"      regenerated {counters['trace_store.corrupt']} corrupt "
            f"entries, results unchanged"
        )

    if args.stats_out:
        with open(args.stats_out, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"store statistics written to {args.stats_out}")

    print("OK: cold, warm and corrupted-store outputs are byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
